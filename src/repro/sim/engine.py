"""The event-heap scheduler at the heart of the simulator.

Design notes
------------
The engine is a single-threaded priority queue of timestamped callbacks.
Simultaneous events are ordered by a monotonically increasing sequence
number assigned at scheduling time, which makes every run fully
deterministic for a fixed seed and workload.

Cancellation is *lazy*: :meth:`Simulator.cancel` marks the event and the
main loop discards cancelled entries when they surface, so cancel is O(1)
and the heap never needs re-sifting.  This matters because protocol
retransmission timers are cancelled far more often than they fire.

Lazy cancellation alone leaks: a retransmission timer cancelled on ack
sits in the heap until its (far-future) deadline surfaces, so a long run
accumulates millions of dead entries.  The simulator therefore *compacts*
— rebuilds the heap from only the live events — whenever cancelled
entries outnumber live ones and the heap is big enough to care
(:data:`COMPACT_MIN_SIZE`).  Compaction cannot change behaviour: event
order is a strict total order on ``(time, seq)``, so popping from the
rebuilt heap yields exactly the same sequence of events.

The heap itself stores ``(time, seq, Event)`` tuples rather than bare
events: ``(time, seq)`` is unique, so comparisons never reach the event
object and stay entirely in C — sift comparisons were the single
hottest line of large benchmark runs when they went through
``Event.__lt__``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceBus


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, running twice, ...)."""


#: Heaps smaller than this are never compacted: rebuilding a tiny heap
#: costs more than letting the main loop skip its few dead entries.
COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`; hold on to one only if you may need to
    :meth:`Simulator.cancel` it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "in_heap")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Whether the event is still queued; lets Simulator.cancel keep an
        # exact live count even when cancelling an already-fired event.
        self.in_heap = True

    def __lt__(self, other: "Event") -> bool:
        # Primary key: simulated time.  Tie-break: scheduling order.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<repro.sim.engine.Event t={self.time:.6g} #{self.seq} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all random streams (see :class:`RandomStreams`).
    trace:
        Optional pre-built :class:`TraceBus`; one is created if omitted.

    Attributes
    ----------
    now:
        Current simulated time.  Starts at ``0.0`` and only moves forward.
    trace:
        The structured trace bus; emit with ``sim.trace.emit(...)``.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceBus] = None):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._cancelled_in_heap: int = 0
        self.seed = seed
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else TraceBus()
        self.events_processed: int = 0
        self.peak_heap: int = 0
        self.compactions: int = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        seq = next(self._counter)
        ev = Event(time, seq, fn, args)
        heapq.heappush(self._heap, (time, seq, ev))
        if len(self._heap) > self.peak_heap:
            self.peak_heap = len(self._heap)
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        if event.cancelled:
            return
        event.cancelled = True
        if not event.in_heap:
            return
        self._cancelled_in_heap += 1
        # Compact when dead entries dominate a heap worth compacting;
        # amortized O(1) per cancel, and retransmission timers cancelled
        # on ack no longer accumulate until their far-future deadlines.
        if (self._cancelled_in_heap * 2 > len(self._heap)
                and len(self._heap) >= COMPACT_MIN_SIZE):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live events only (order-preserving)."""
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2].in_heap = False
        self._heap = [e for e in self._heap if not e[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    def _discard_cancelled_top(self) -> None:
        """Pop cancelled entries off the top of the heap."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2].in_heap = False
            self._cancelled_in_heap -= 1

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.get(name)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire,
        and ``now`` is advanced to ``until`` even if the heap drains early
        (so periodic metric sampling sees a consistent end time).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                ev = self._heap[0][2]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    ev.in_heap = False
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                ev.in_heap = False
                if ev.time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event heap yielded a past event")
                self.now = ev.time
                ev.fn(*ev.args)
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
            # Advance the clock to the requested horizon when nothing is
            # pending before it (so periodic samplers see a consistent
            # end time even if the heap drained or only future events
            # remain).
            if until is not None and until > self.now:
                nxt = self.peek()
                if nxt is None or nxt > until:
                    self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the main loop to stop after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Process exactly one pending event.  Returns False if none left."""
        self._discard_cancelled_top()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)[2]
        ev.in_heap = False
        self.now = ev.time
        ev.fn(*ev.args)
        self.events_processed += 1
        return True

    def peek(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None."""
        self._discard_cancelled_top()
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled_in_heap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.6g} pending={self.pending} "
            f"processed={self.events_processed} seed={self.seed}>"
        )
