"""The event-heap scheduler at the heart of the simulator.

Design notes
------------
The engine is a single-threaded priority queue of timestamped callbacks.
Events are ordered by ``(time, key)`` where ``key`` is a 64-bit
**causal key** derived from the key of the event that scheduled it and a
per-parent child counter (splitmix64-style mixing).  Unlike the global
scheduling counter the engine used before, causal keys are
*decomposition-invariant*: they do not depend on how the event
population is interleaved globally, only on each event's causal
ancestry.  That is what lets the space-parallel backend
(:mod:`repro.shard`) run one engine per shard and still reproduce the
sequential engine's event order — and therefore its canonical trace —
byte for byte.  For a fixed seed and workload every run remains fully
deterministic; simultaneous events execute in causal-key order, which is
arbitrary but stable across runs, processes, and shard counts.

Cancellation is *lazy*: :meth:`Simulator.cancel` marks the event and the
main loop discards cancelled entries when they surface, so cancel is O(1)
and the heap never needs re-sifting.  This matters because protocol
retransmission timers are cancelled far more often than they fire.

Lazy cancellation alone leaks: a retransmission timer cancelled on ack
sits in the heap until its (far-future) deadline surfaces, so a long run
accumulates millions of dead entries.  The simulator therefore *compacts*
— rebuilds the heap from only the live events — whenever cancelled
entries outnumber live ones and the heap is big enough to care
(:data:`COMPACT_MIN_SIZE`).  Compaction cannot change behaviour: event
order is a (probabilistically) strict total order on ``(time, key)``, so
popping from the rebuilt heap yields exactly the same sequence of events.

The heap itself stores ``(time, key, Event)`` tuples rather than bare
events: ``(time, key)`` collides only on a 64-bit hash collision at an
identical float timestamp, so comparisons essentially never reach the
event object and stay entirely in C.

Execution contexts and ownership
--------------------------------
Every event carries an ``owner`` — the id of the simulated entity whose
behaviour it implements, or ``None`` for *control-plane* events
(topology maintenance, scenario drivers) that the sharded backend
replicates in every shard.  Events inherit the owner of the context that
schedules them; :meth:`Simulator.call_owned` runs a code section under a
different owner (used at the control→entity boundary, e.g. "start this
NE", "this MH joins").  In sequential runs ownership is inert metadata;
a sharded worker installs :attr:`Simulator.gate` to drop events whose
owner lives on another shard.  Counters tick even for dropped work so
causal keys stay aligned across shards.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple

from repro.runtime.api import _INHERIT, Runtime
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceBus


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, running twice, ...)."""


#: Heaps smaller than this are never compacted: rebuilding a tiny heap
#: costs more than letting the main loop skip its few dead entries.
COMPACT_MIN_SIZE = 64

_MASK = (1 << 64) - 1


def mix_key(base: int, salt: int) -> int:
    """Derive a child causal key: FNV-combine then splitmix64 finalize.

    Pure integer arithmetic, so the result is identical across
    platforms, processes, and Python versions.  The low bit is forced to
    1 so every derived key is nonzero — key 0 is reserved for the build
    phase, which must sort before any event at the same timestamp.
    """
    z = (base * 0x100000001B3 ^ salt) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) | 1


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`; hold on to one only if you may need to
    :meth:`Simulator.cancel` it.  An event refused by the shard gate
    comes back already cancelled (``in_heap`` False), so timers treat it
    as unarmed without special-casing.
    """

    __slots__ = ("time", "key", "fn", "args", "owner", "cancelled", "in_heap")

    def __init__(self, time: float, key: int, fn: Callable[..., Any],
                 args: tuple, owner: Optional[str] = None):
        self.time = time
        self.key = key
        self.fn = fn
        self.args = args
        self.owner = owner
        self.cancelled = False
        # Whether the event is still queued; lets Simulator.cancel keep an
        # exact live count even when cancelling an already-fired event.
        self.in_heap = True

    def __lt__(self, other: "Event") -> bool:
        # Primary key: simulated time.  Tie-break: causal key.
        if self.time != other.time:
            return self.time < other.time
        return self.key < other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return (f"<repro.sim.engine.Event t={self.time:.6g} "
                f"key={self.key:#x} {name} {state}>")


class Simulator(Runtime):
    """Deterministic discrete-event simulator.

    The canonical :class:`~repro.runtime.api.Runtime` implementation —
    the protocol stack above only ever uses the seam surface, so this
    engine and the wall-clock backend in :mod:`repro.live` are
    interchangeable underneath it.

    Parameters
    ----------
    seed:
        Master seed for all random streams (see :class:`RandomStreams`).
    trace:
        Optional pre-built :class:`TraceBus`; one is created if omitted.

    Attributes
    ----------
    now:
        Current simulated time.  Starts at ``0.0`` and only moves forward.
    trace:
        The structured trace bus; emit with ``sim.trace.emit(...)``.
    gate:
        Optional ``gate(owner) -> bool`` predicate installed by a shard
        worker; owners for which it returns False have their events
        dropped (counters still tick).  ``None`` (the default) keeps
        every event — the exact sequential path.
    obs:
        The attached :class:`~repro.obs.registry.MetricsRegistry`, or
        ``None`` (the default).  Instrumented protocol code null-checks
        this before recording anything, so a run without observability
        executes zero registry callbacks.
    obs_hook:
        The attached :class:`~repro.obs.session.ObsSession`, or
        ``None``.  While set, the run loops route each dispatch through
        ``obs_hook.dispatch(self, ev)`` — which executes the event via
        :meth:`_execute` and observes it (event counting, window
        folding, stride-sampled wall timing).  Observation is strictly
        out-of-band: the hook never schedules, emits, or draws
        randomness, so the event sequence is bit-identical either way.
    shard:
        The worker's shard context when running under
        :mod:`repro.shard`, else ``None``.  Scenario drivers consult it
        to register cross-shard synchronization probes.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceBus] = None):
        self.now: float = 0.0
        self._heap: list[Tuple[float, int, Event]] = []
        self._running = False
        self._stopped = False
        self._cancelled_in_heap: int = 0
        self.seed = seed
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else TraceBus()
        self.trace._sim = self
        self.events_processed: int = 0
        self.peak_heap: int = 0
        self.compactions: int = 0
        # Execution context: current owner, causal-key base, the
        # outermost event key (for emission keys), the owned-section
        # nesting path, and the action/emission counters.  The build
        # phase runs with key 0 so its records sort before any event's.
        self._ctx_owner: Optional[str] = None
        self._ctx_key: int = 0
        self._ctx_root: int = 0
        self._ctx_path: tuple = ()
        self._ctx_actions: int = 0
        self._ctx_emits: int = 0
        self.gate: Optional[Callable[[Any], bool]] = None
        self.shard = None
        self.obs = None
        self.obs_hook = None
        self.spans = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 owner: Any = _INHERIT) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args, owner=owner)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    owner: Any = _INHERIT) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time.

        ``owner`` defaults to the scheduling context's owner; pass an
        entity id to hand the event to a different entity (the fabric
        does this for message arrivals) or ``None`` to mark it
        control-plane.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        a = self._ctx_actions
        self._ctx_actions = a + 1
        # Inline mix_key(self._ctx_key, a << 1): this is the hot path.
        z = (self._ctx_key * 0x100000001B3 ^ (a << 1)) & _MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        key = (z ^ (z >> 31)) | 1
        if owner is _INHERIT:
            owner = self._ctx_owner
        ev = Event(time, key, fn, args, owner)
        gate = self.gate
        if gate is not None and owner is not None and not gate(owner):
            # Non-local entity: the event exists only for key alignment.
            ev.cancelled = True
            ev.in_heap = False
            return ev
        self._push(time, key, ev)
        return ev

    def schedule_keyed(self, time: float, key: int, owner: Any,
                       fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule with an explicit causal key (cross-shard imports).

        The key was minted by the sending shard's context, so no local
        counter ticks; the gate is bypassed — the shard runtime only
        imports events it owns.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot import at t={time} before current time t={self.now}"
            )
        ev = Event(time, key, fn, args, owner)
        self._push(time, key, ev)
        return ev

    def _push(self, time: float, key: int, ev: Event) -> None:
        """Enqueue one live event and track the heap high-water mark.

        The single place heap growth is accounted: every admission path
        (:meth:`schedule_at`, :meth:`schedule_keyed`) funnels through
        here, so occupancy counters stay consistent by construction.
        """
        heap = self._heap
        heapq.heappush(heap, (time, key, ev))
        if len(heap) > self.peak_heap:
            self.peak_heap = len(heap)

    def mint_child_key(self) -> int:
        """Tick the action counter and return the key a
        :meth:`schedule_at` call made right now would assign.

        Used by the fabric when it exports a cross-shard arrival instead
        of scheduling it locally: the importing shard must see exactly
        the key the sequential engine would have used.
        """
        a = self._ctx_actions
        self._ctx_actions = a + 1
        return mix_key(self._ctx_key, a << 1)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        if event.cancelled:
            return
        event.cancelled = True
        if not event.in_heap:
            return
        self._cancelled_in_heap += 1
        # Compact when dead entries dominate a heap worth compacting;
        # amortized O(1) per cancel, and retransmission timers cancelled
        # on ack no longer accumulate until their far-future deadlines.
        if (self._cancelled_in_heap * 2 > len(self._heap)
                and len(self._heap) >= COMPACT_MIN_SIZE):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live events only (order-preserving).

        In place: the run loops hold a reference to the heap list, and
        compaction can fire mid-event (via :meth:`cancel`), so the list
        object must survive.
        """
        heap = self._heap
        for entry in heap:
            if entry[2].cancelled:
                entry[2].in_heap = False
        heap[:] = [e for e in heap if not e[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self.compactions += 1
        obs = self.obs
        if obs is not None:
            obs.inc("engine.compactions")

    def _discard_cancelled_top(self) -> None:
        """Pop cancelled entries off the top of the heap."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2].in_heap = False
            self._cancelled_in_heap -= 1

    # ------------------------------------------------------------------
    # Ownership contexts
    # ------------------------------------------------------------------
    def call_owned(self, owner: Any, fn: Callable[..., Any], *args: Any):
        """Run ``fn(*args)`` in a sub-context owned by ``owner``.

        This is the control→entity boundary: scenario drivers and the
        protocol facade wrap entity behaviour ("start this source",
        "this MH leaves") so a shard worker can skip the section when
        the entity lives elsewhere.  Both counters tick *before* the
        gate check, so skipping shards stay key-aligned with the owner
        shard; the section gets a fresh key namespace, so the amount of
        work done inside never leaks into the enclosing context's keys.

        Returns ``fn``'s result, or ``None`` when the section was
        skipped by the gate.
        """
        a = self._ctx_actions
        e = self._ctx_emits
        self._ctx_actions = a + 1
        self._ctx_emits = e + 1
        gate = self.gate
        if gate is not None and owner is not None and not gate(owner):
            return None
        saved = (self._ctx_owner, self._ctx_key, self._ctx_path,
                 self._ctx_actions, self._ctx_emits)
        self._ctx_owner = owner
        self._ctx_key = mix_key(self._ctx_key, (a << 1) | 1)
        self._ctx_path = self._ctx_path + (e,)
        self._ctx_actions = 0
        self._ctx_emits = 0
        try:
            return fn(*args)
        finally:
            (self._ctx_owner, self._ctx_key, self._ctx_path,
             self._ctx_actions, self._ctx_emits) = saved

    @property
    def current_owner(self) -> Optional[str]:
        """Owner of the currently executing context (None = control)."""
        return self._ctx_owner

    def emission_key(self) -> tuple:
        """Sort key (without time) for the record being emitted now.

        ``(root event key, *owned-section path, per-context emission
        counter)`` — compared lexicographically, and identical for a
        given record no matter how the event population is sharded.
        Ticks the emission counter; used only by keyed trace recorders.
        """
        e = self._ctx_emits
        self._ctx_emits = e + 1
        return (self._ctx_root,) + self._ctx_path + (e,)

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.get(name)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _execute(self, ev: Event) -> None:
        """Advance the clock and run one event in its own context."""
        self.now = ev.time
        self._ctx_owner = ev.owner
        self._ctx_key = ev.key
        self._ctx_root = ev.key
        self._ctx_path = ()
        self._ctx_actions = 0
        self._ctx_emits = 0
        ev.fn(*ev.args)
        self.events_processed += 1

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire,
        and ``now`` is advanced to ``until`` even if the heap drains early
        (so periodic metric sampling sees a consistent end time).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        heap = self._heap
        # Observability is kept off the common path: the loop holds the
        # sampling countdown as a local and only calls into the hook on
        # a sampled dispatch — with no hook the loop is byte-for-byte
        # the pre-obs loop, and with one the fast path adds a single
        # int decrement and truth test.
        hook = self.obs_hook
        hk_count = hook._countdown if hook is not None else 0
        try:
            while heap:
                if self._stopped:
                    break
                ev = heap[0][2]
                if ev.cancelled:
                    heapq.heappop(heap)
                    ev.in_heap = False
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(heap)
                ev.in_heap = False
                if ev.time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event heap yielded a past event")
                if hook is None:
                    self._execute(ev)
                else:
                    hk_count -= 1
                    if hk_count:
                        self._execute(ev)
                    else:
                        hk_count = hook.slow_dispatch(self, ev)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            # Advance the clock to the requested horizon when nothing is
            # pending before it (so periodic samplers see a consistent
            # end time even if the heap drained or only future events
            # remain).
            if until is not None and until > self.now:
                nxt = self.peek()
                if nxt is None or nxt > until:
                    self.now = until
        finally:
            if hook is not None:
                hook._countdown = hk_count
            self._running = False

    def run_window(self, stop_time: float, stop_key: int = 0,
                   inclusive: bool = False) -> int:
        """Window-stepping API for the sharded backend.

        Executes pending events strictly below ``(stop_time, stop_key)``
        — or, with ``inclusive=True``, every event with
        ``time <= stop_time`` regardless of key (the final horizon tail,
        matching :meth:`run`'s inclusive ``until``).  Does *not* advance
        ``now`` past the last executed event; the caller owns the final
        clock advance.  Returns the number of events processed.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        heap = self._heap
        # Same inline observability protocol as :meth:`run`.
        hook = self.obs_hook
        hk_count = hook._countdown if hook is not None else 0
        try:
            while heap:
                t, k, ev = heap[0]
                if ev.cancelled:
                    heapq.heappop(heap)
                    ev.in_heap = False
                    self._cancelled_in_heap -= 1
                    continue
                if inclusive:
                    if t > stop_time:
                        break
                elif t > stop_time or (t == stop_time and k >= stop_key):
                    break
                heapq.heappop(heap)
                ev.in_heap = False
                if hook is None:
                    self._execute(ev)
                else:
                    hk_count -= 1
                    if hk_count:
                        self._execute(ev)
                    else:
                        hk_count = hook.slow_dispatch(self, ev)
                processed += 1
        finally:
            if hook is not None:
                hook._countdown = hk_count
            self._running = False
        return processed

    def stop(self) -> None:
        """Request the main loop to stop after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Process exactly one pending event.  Returns False if none left."""
        self._discard_cancelled_top()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)[2]
        ev.in_heap = False
        self._execute(ev)
        return True

    def peek(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None."""
        self._discard_cancelled_top()
        return self._heap[0][0] if self._heap else None

    def peek_entry(self) -> Optional[Tuple[float, int]]:
        """``(time, key)`` of the next live event, or None."""
        self._discard_cancelled_top()
        if not self._heap:
            return None
        t, k, _ = self._heap[0]
        return (t, k)

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled_in_heap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.6g} pending={self.pending} "
            f"processed={self.events_processed} seed={self.seed}>"
        )
