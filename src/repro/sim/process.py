"""Generator-based processes on top of the event engine.

Workload scripts (sources, churn drivers, mobility scripts) read more
naturally as sequential code than as callback chains.  A :class:`Process`
wraps a generator that yields *directives*:

* ``Timeout(d)`` — sleep ``d`` simulated time units.
* ``WaitSignal(sig)`` — block until ``sig.fire()`` is called; the value
  passed to ``fire`` becomes the value of the ``yield`` expression.

Example
-------
>>> def script(sim):
...     yield Timeout(1.0)
...     print("t =", sim.now)
>>> sim = Simulator()
>>> Process(sim, script(sim))
<Process ...>
>>> sim.run()
t = 1.0
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from repro.sim.engine import Simulator


class Timeout:
    """Directive: suspend the process for ``delay`` units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay


class Signal:
    """A broadcast wake-up point for processes.

    ``fire(value)`` resumes every currently waiting process with ``value``
    as the result of its ``yield WaitSignal(sig)`` expression.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._waiters: List["Process"] = []
        self.fired_count = 0

    def fire(self, value: Any = None) -> None:
        """Wake all waiters (they resume as separate scheduled events)."""
        self.fired_count += 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume_soon(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class WaitSignal:
    """Directive: suspend until the given :class:`Signal` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


Directive = Union[Timeout, WaitSignal]


class Process:
    """Drives a generator through the simulator.

    The generator is started immediately (its code up to the first yield
    runs synchronously at construction time's scheduling step) by
    scheduling a zero-delay kick-off event.
    """

    def __init__(self, sim: Simulator, gen: Generator[Directive, Any, Any], name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.result: Optional[Any] = None
        self.done_signal = Signal(f"{self.name}.done")
        sim.schedule(0.0, self._advance, None)

    def _resume_soon(self, value: Any) -> None:
        self.sim.schedule(0.0, self._advance, value)

    def _advance(self, send_value: Any) -> None:
        if not self.alive:
            return
        try:
            directive = self.gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.done_signal.fire(stop.value)
            return
        if isinstance(directive, Timeout):
            self.sim.schedule(directive.delay, self._advance, None)
        elif isinstance(directive, WaitSignal):
            directive.signal._waiters.append(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {directive!r}; expected "
                "Timeout or WaitSignal"
            )

    def interrupt(self) -> None:
        """Kill the process; it never resumes and its generator is closed."""
        self.alive = False
        self.gen.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"
