"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517/660 editable installs (which build a wheel) fail.  This shim
lets ``python setup.py develop`` / ``pip install -e . --no-build-isolation``
fall back to the classic egg-link editable install.  All real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
