#!/usr/bin/env python3
"""Sweep demo: a 2-parameter grid, replicated, aggregated, exported.

Expands the ``quickstart`` scenario over hierarchy width × source rate
(2 × 3 = 6 points, 2 replications each), runs the 12 simulations
through the experiment runner, and writes a machine-readable JSON
artifact with per-point mean/std/95%-CI — the workflow every paper
figure in this repo is moving onto.

The same sweep from the command line::

    python -m repro.experiments sweep quickstart \\
        --param hierarchy.n_br=3,5 --param workload.rate_per_sec=10,20,40 \\
        --reps 2 --jobs 4 --out sweep_demo.json

Run:  python examples/sweep_demo.py
"""

import os

from repro.experiments import aggregate, expand_grid, export_json, registry, run_sweep
from repro.metrics import format_table


def main() -> None:
    duration = float(os.environ.get("REPRO_EXAMPLE_DURATION_MS", 6_000))
    out = os.environ.get("REPRO_SWEEP_OUT", "sweep_demo.json")

    base = registry.get("quickstart", duration_ms=duration,
                        warmup_ms=duration / 3)

    points = expand_grid(
        base,
        sweep={
            "hierarchy.n_br": [3, 5],
            "workload.rate_per_sec": [10.0, 20.0, 40.0],
        },
        replications=2,
    )
    print(f"{len(points)} runs ({len(points) // 2} points x 2 "
          f"replications), {duration:.0f} ms each")

    results = run_sweep(points, jobs=2)
    aggs = aggregate(results)

    rows = [{
        "n_br": a["params"]["hierarchy.n_br"],
        "rate": a["params"]["workload.rate_per_sec"],
        "goodput (msg/s)": round(a["metrics"]["goodput"]["mean"], 2),
        "+-ci95": round(a["metrics"]["goodput"]["ci95"], 3),
        "p50 (ms)": round(a["metrics"]["latency_p50"]["mean"], 1),
        "p99 (ms)": round(a["metrics"]["latency_p99"]["mean"], 1),
        "violations": int(a["metrics"]["order_violations"]["mean"]),
    } for a in aggs]
    print(format_table(rows))

    export_json(out, results, aggs,
                meta={"example": "sweep_demo", "root_seed": base.seed})
    print(f"\nwrote {out} — identical bytes on every rerun "
          f"(same root seed).")


# The guard is load-bearing: the parallel runner's workers re-import
# __main__ under the spawn start method (macOS/Windows).
if __name__ == "__main__":
    main()
