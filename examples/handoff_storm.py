#!/usr/bin/env python3
"""Handoff storm: smooth handoff (MMA path reservation) on vs off.

Reproduces the paper's §3 claim in a stress setting: "in most cases,
when an MH handoffs, it can immediately receive multicast messages
because either some other members have already been there, or some
reserved path has already been set up in advance."

A single MH sprints across a row of cells (directional walk, short
dwell) while a 25 msg/s stream flows.  With smooth handoff the next AP
is pre-warmed by a NeighborNotify-triggered reservation; without it the
AP must build its multicast path after the MH arrives.

Run:  python examples/handoff_storm.py
"""

import os

from repro.core import ProtocolConfig, RingNet
from repro.metrics import InterruptionCollector, OrderChecker, format_table
from repro.mobility import CellGrid, DirectionalWalk, HandoffDriver
from repro.sim import Simulator
from repro.topology import HierarchySpec
from repro.topology.tiers import Tier

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION_MS", 20_000))


def storm(smooth: bool, seed: int = 5) -> dict:
    sim = Simulator(seed=seed)
    # Dynamic group mode: APs only receive the stream once a member or a
    # reservation pulls them in — the regime where pre-warming matters.
    cfg = ProtocolConfig(smooth_handoff=smooth, reservation_ttl=5_000.0,
                         static_ap_paths=False)
    # One AG ring with many APs: a corridor of cells.
    net = RingNet.build(sim, HierarchySpec(n_br=2, ags_per_br=1,
                                           aps_per_ag=6, mhs_per_ap=0),
                        cfg=cfg)
    order = OrderChecker(sim.trace)
    inter = InterruptionCollector(sim.trace)
    # A fast stream (10 ms cadence) so cold-path delays are visible above
    # the inter-message gap.
    src = net.add_source(corresponding="br:0", rate_per_sec=100)

    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid(len(aps), 1, aps)  # a 1-row corridor
    sprinter = net.add_mobile_host("mh:sprinter", aps[0])
    driver = HandoffDriver(net, grid,
                           DirectionalWalk(mean_dwell_ms=600.0,
                                           persistence=0.95))
    net.start()
    src.start()
    driver.track("mh:sprinter", aps[0])
    sim.run(until=DURATION)
    order.assert_ok()

    s = inter.summary()
    mh = net.mobile_hosts["mh:sprinter"]
    return {
        "smooth_handoff": "on" if smooth else "off",
        "handoffs": mh.handoffs,
        "interrupt_p50_ms": round(s["p50"], 1),
        "interrupt_p95_ms": round(s["p95"], 1),
        "interrupt_max_ms": round(s["max"], 1),
        "tombstoned": mh.tombstones,
        "delivered": mh.delivered_count,
    }


rows = [storm(smooth=True), storm(smooth=False)]
print(format_table(rows))
print()
on, off = rows[0], rows[1]
print(f"reservation advantage is in the tail: worst-case interruption "
      f"{off['interrupt_max_ms']}ms (cold path build) -> "
      f"{on['interrupt_max_ms']}ms with pre-reserved paths — the paper's "
      f"'in most cases ... immediately receive'.")
