#!/usr/bin/env python3
"""Quickstart: a totally-ordered multicast group in ~30 lines.

Builds the ``quickstart`` scenario from the experiments registry (the
paper's Figure-1 hierarchy: 3 border routers in the top ordering ring,
AG rings below, APs at the edge, 2 mobile hosts per AP, two multicast
sources), runs 10 simulated seconds, and shows that every mobile host
delivered the *same* totally ordered stream.

Run:  python examples/quickstart.py
"""

import os

from repro.experiments import build_scenario, registry
from repro.metrics import LatencyCollector, OrderChecker

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION_MS", 10_000))

spec = registry.get("quickstart", duration_ms=DURATION, warmup_ms=0.0)
scenario = build_scenario(spec)

# Measurement taps on the trace bus.
order = OrderChecker(scenario.sim.trace)
latency = LatencyCollector(scenario.sim.trace, warmup=DURATION / 10)

scenario.run()  # net + sources started, run to the spec's duration

sent = scenario.fleet.total_sent
print(f"sent:               {sent} messages across "
      f"{len(scenario.fleet)} sources")
print(f"group members:      {len(scenario.net.member_hosts())} mobile hosts")
print(f"app deliveries:     {scenario.net.total_app_deliveries()}")
print(f"latency (ms):       {latency.summary()}")

order.assert_ok()
print("total order:        verified — every MH delivered the same "
      "sequence, no gaps, no duplicates")

# Peek at one receiver's view of the stream.
mh = scenario.net.member_hosts()[0]
head = [(g, p) for g, p, _ in mh.app_log[:5]]
print(f"{mh.guid} head of stream: {head}")
