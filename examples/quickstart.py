#!/usr/bin/env python3
"""Quickstart: a totally-ordered multicast group in ~30 lines.

Builds the paper's Figure-1 hierarchy (3 border routers in the top
ordering ring, AG rings below, APs at the edge, 2 mobile hosts per AP),
attaches two multicast sources, runs 10 simulated seconds, and shows
that every mobile host delivered the *same* totally ordered stream.

Run:  python examples/quickstart.py
"""

from repro.sim import Simulator
from repro.core import RingNet
from repro.topology import HierarchySpec
from repro.metrics import LatencyCollector, OrderChecker

sim = Simulator(seed=7)
net = RingNet.build(sim, HierarchySpec(n_br=3, ags_per_br=2,
                                       aps_per_ag=2, mhs_per_ap=2))

# Measurement taps on the trace bus.
order = OrderChecker(sim.trace)
latency = LatencyCollector(sim.trace, warmup=1_000.0)

# Two senders, each feeding its own corresponding top-ring node.
src_a = net.add_source(corresponding="br:0", rate_per_sec=20)
src_b = net.add_source(corresponding="br:1", rate_per_sec=20)

net.start()
src_a.start()
src_b.start(delay=7.0)  # de-phase the CBR streams

sim.run(until=10_000)  # 10 simulated seconds

print(f"sent:               {src_a.sent + src_b.sent} messages "
      f"({src_a.sent} + {src_b.sent})")
print(f"group members:      {len(net.member_hosts())} mobile hosts")
print(f"app deliveries:     {net.total_app_deliveries()}")
print(f"latency (ms):       {latency.summary()}")

order.assert_ok()
print("total order:        verified — every MH delivered the same "
      "sequence, no gaps, no duplicates")

# Peek at one receiver's view of the stream.
mh = net.member_hosts()[0]
head = [(g, p) for g, p, _ in mh.app_log[:5]]
print(f"{mh.guid} head of stream: {head}")
