#!/usr/bin/env python3
"""Failure drill: killing routers mid-stream, watching recovery live.

Sequence of injected faults against a 4-BR hierarchy carrying a 20 msg/s
totally-ordered stream:

* t=3 s — crash whichever Border Router currently holds the
  OrderingToken (Token-Loss: the membership layer signals, the ring
  regenerates from the freshest NewOrderingToken snapshot);
* t=6 s — crash an Access Gateway ring leader (leader re-election; its
  parent BR re-registers the new leader; APs re-parent to candidates);
* t=9 s — partition the top ring and merge it back at t=11 s
  (Multiple-Token resolution keeps exactly one token).

Throughout, the OrderChecker verifies that every mobile host keeps
delivering the identical gap-accounted sequence.

Run:  python examples/failure_drill.py
"""

import os

from repro.core import RingNet
from repro.metrics import OrderChecker, format_table
from repro.sim import Simulator
from repro.topology import HierarchySpec

# Fault times scale with the (env-overridable) drill length so a short
# smoke run still exercises every injected failure.
DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION_MS", 24_000))
T = DURATION / 24_000.0

sim = Simulator(seed=13)
net = RingNet.build(sim, HierarchySpec(n_br=4, ags_per_br=2,
                                       aps_per_ag=2, mhs_per_ap=1))
order = OrderChecker(sim.trace)
src = net.add_source(corresponding="br:0", rate_per_sec=20)

timeline = []
for kind in ("token.regenerated", "token.destroyed", "fault.crash"):
    sim.trace.subscribe(
        kind, lambda rec, k=kind: timeline.append(
            {"t (ms)": round(rec.time, 1), "event": k,
             "node": rec.get("node", "?")}))


def crash_token_holder() -> None:
    holder = next((ne for ne in net.top_ring_nes()
                   if ne.held_token is not None), None)
    victim = holder.id if holder is not None else "br:2"
    print(f"[{sim.now:8.1f}] crashing token holder {victim}")
    net.crash_ne(victim)


def crash_ag_leader() -> None:
    ring = net.hierarchy.rings["ring:ag.1"]
    print(f"[{sim.now:8.1f}] crashing AG ring leader {ring.leader}")
    net.crash_ne(ring.leader)


def partition() -> None:
    members = net.hierarchy.top_ring.members
    half = len(members) // 2
    print(f"[{sim.now:8.1f}] splitting top ring "
          f"{members[:half]} | {members[half:]}")
    net.maintenance.split_top_ring(members[:half], members[half:])


def merge() -> None:
    print(f"[{sim.now:8.1f}] merging top ring halves")
    ring_ids = [rid for rid in net.hierarchy.rings
                if rid.startswith("ring:br")]
    net.maintenance.merge_top_rings(*sorted(ring_ids))


net.start()
src.start()
sim.schedule_at(3_000 * T, crash_token_holder)
sim.schedule_at(6_000 * T, crash_ag_leader)
sim.schedule_at(9_000 * T, partition)
sim.schedule_at(11_000 * T, merge)
sim.run(until=18_000 * T)
src.stop()
sim.run(until=DURATION)

order.assert_ok()
print()
print(format_table(timeline))
print()
counts = sorted(m.delivered_count + m.tombstones
                for m in net.member_hosts())
print(f"sent {src.sent}; per-surviving-MH accounted "
      f"(delivered+tombstoned): {counts[0]}..{counts[-1]}")
print(f"total order verified across {order.deliveries_checked} deliveries, "
      f"{order.violation_count} violations")
regens = sum(ne.tokens_regenerated for ne in net.nes.values())
print(f"token regenerations: {regens}")
