#!/usr/bin/env python3
"""A mobile video-conference: roaming audience, steady senders.

The paper's §1 motivating workload: conferencing / distance learning
where every participant must see the same ordered stream while walking
around a campus.  The scenario comes from the experiments registry
(``campus``), tweaked declaratively: mobile hosts random-walk across the
AP cell grid and hand off on every cell crossing; the protocol keeps
delivery totally ordered and (nearly) uninterrupted via MMA path
reservations.

Run:  python examples/conference_mobile.py
"""

import os

from repro.experiments import build_scenario, registry
from repro.membership import MembershipService
from repro.metrics import (
    InterruptionCollector,
    LatencyCollector,
    OrderChecker,
    ThroughputCollector,
    format_table,
)

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION_MS", 15_000))
WARMUP = DURATION / 7.5  # 2 s of the default 15 s run

spec = registry.get(
    "campus",
    duration_ms=DURATION,
    warmup_ms=0.0,
    seed=11,
    **{
        "workload.rate_per_sec": 15.0,
        "mobility.mean_dwell_ms": 1_500.0,  # a handoff every ~1.5 s per MH
    },
)
scenario = build_scenario(spec)

order = OrderChecker(scenario.sim.trace)
latency = LatencyCollector(scenario.sim.trace, warmup=WARMUP)
throughput = ThroughputCollector(scenario.sim.trace)
interruptions = InterruptionCollector(scenario.sim.trace)
membership = MembershipService(scenario.net.cfg.gid, scenario.sim.trace)

scenario.run()
order.assert_ok()

agg_rate = scenario.fleet.aggregate_rate_per_sec
rows = [
    {"metric": "aggregate source rate", "value": f"{agg_rate:.0f} msg/s"},
    {"metric": "per-MH goodput",
     "value": f"{throughput.goodput(WARMUP, DURATION):.1f} msg/s"},
    {"metric": "handoffs driven",
     "value": str(scenario.mobility.handoffs_driven)},
    {"metric": "p50 delivery latency",
     "value": f"{latency.summary()['p50']:.1f} ms"},
    {"metric": "p99 delivery latency",
     "value": f"{latency.summary()['p99']:.1f} ms"},
    {"metric": "p50 post-handoff interruption",
     "value": f"{interruptions.summary()['p50']:.1f} ms"},
    {"metric": "p95 post-handoff interruption",
     "value": f"{interruptions.summary()['p95']:.1f} ms"},
    {"metric": "total order", "value": "verified"},
]
print(format_table(rows))
print()
print("membership:", membership.summary())
