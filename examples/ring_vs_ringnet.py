#!/usr/bin/env python3
"""Distribution-vehicle shoot-out: one big ring [16] vs the RingNet tree-of-rings.

The paper's §2 criticism of the single logical ring: "since all the
control information has to be rotated along the ring, it may lead to
large latency and require large buffers when the ring becomes large."
RingNet keeps each ring small (locality) and scales by adding tiers.

Both systems here run the *same* ordering/token/reliability stack on the
same simulator; only the topology differs.  Watch latency and buffer
growth as the group size N grows.

Run:  python examples/ring_vs_ringnet.py
"""

import os

from repro.baselines import SingleRingMulticast
from repro.core import ProtocolConfig, RingNet
from repro.metrics import LatencyCollector, format_table
from repro.sim import Simulator
from repro.topology import HierarchySpec

DURATION = float(os.environ.get("REPRO_EXAMPLE_DURATION_MS", 8_000))
RATE = 15.0
CFG = ProtocolConfig(mq_retention=16)  # small retention isolates backlog


def run_single_ring(n_bs: int) -> dict:
    sim = Simulator(seed=9)
    ring = SingleRingMulticast.build_ring(sim, n_bs=n_bs, mhs_per_bs=1,
                                          cfg=CFG)
    lat = LatencyCollector(sim.trace, warmup=2_000.0)
    src = ring.add_source(corresponding="bs:0", rate_per_sec=RATE)
    ring.start()
    src.start()
    sim.run(until=DURATION)
    peaks = ring.ring_peak_buffers()
    return {
        "system": "single-ring",
        "N": n_bs,
        "p50_ms": round(lat.summary()["p50"], 1),
        "p99_ms": round(lat.summary()["p99"], 1),
        "peak_buffer": peaks["wq_peak"] + peaks["mq_peak"],
    }


def run_ringnet(n_bs: int) -> dict:
    # Match the edge count: n_bs APs spread under a 3-BR top ring.
    ags_per_br = 2
    aps_per_ag = max(1, n_bs // (3 * ags_per_br))
    sim = Simulator(seed=9)
    net = RingNet.build(sim, HierarchySpec(n_br=3, ags_per_br=ags_per_br,
                                           aps_per_ag=aps_per_ag,
                                           mhs_per_ap=1), cfg=CFG)
    lat = LatencyCollector(sim.trace, warmup=2_000.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=RATE)
    net.start()
    src.start()
    sim.run(until=DURATION)
    reports = net.buffer_reports()
    peak = max(r["wq_peak"] + r["mq_peak"] for r in reports)
    return {
        "system": "ringnet",
        "N": 3 * ags_per_br * aps_per_ag,
        "p50_ms": round(lat.summary()["p50"], 1),
        "p99_ms": round(lat.summary()["p99"], 1),
        "peak_buffer": peak,
    }


rows = []
for n in (6, 12, 24, 48):
    rows.append(run_single_ring(n))
    rows.append(run_ringnet(n))
print(format_table(rows))
print()
print("single-ring latency grows with N (token + data circle the whole")
print("ring); RingNet latency stays near-flat (local rings + tree depth).")
