"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.datastructures import BufferedMessage, MessageQueue, WorkingTable
from repro.core.token import OrderingToken
from repro.metrics.report import percentile, summarize
from repro.net.transport import ReliableChannel
from repro.sim.rand import RandomStreams
from repro.topology.ring import LogicalRing


def bm(seq: int) -> BufferedMessage:
    return BufferedMessage(global_seq=seq, source="s", local_seq=seq,
                           ordering_node="n", payload=seq)


# ---------------------------------------------------------------------------
# MessageQueue invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=200), max_size=80))
def test_mq_pointers_monotone_under_any_insert_order(seqs):
    mq = MessageQueue()
    last_front = mq.front
    for s in seqs:
        mq.insert(bm(s))
        mq.mark_delivered(s)
        mq.advance_front()
        assert mq.front >= last_front
        last_front = mq.front
        assert mq.valid_front <= mq.front + 1
        assert mq.rear >= mq.front or mq.rear == -1


@given(st.sets(st.integers(min_value=0, max_value=100), max_size=60))
def test_mq_front_is_longest_delivered_prefix(seqs):
    mq = MessageQueue()
    for s in seqs:
        mq.insert(bm(s))
        mq.mark_delivered(s)
    mq.advance_front()
    expected = -1
    while expected + 1 in seqs:
        expected += 1
    assert mq.front == expected


@given(st.sets(st.integers(min_value=0, max_value=100), min_size=1,
               max_size=60),
       st.integers(min_value=0, max_value=20))
def test_mq_prune_never_loses_undelivered(seqs, retention):
    mq = MessageQueue()
    delivered = {s for s in seqs if s % 2 == 0}
    for s in seqs:
        mq.insert(bm(s))
        if s in delivered:
            mq.mark_delivered(s)
    mq.advance_front()
    mq.prune(retention)
    for s in seqs - delivered:
        assert mq.has(s)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                max_size=100))
def test_mq_insert_idempotent(seqs):
    mq = MessageQueue()
    accepted = sum(1 for s in seqs if mq.insert(bm(s)))
    assert accepted == len(set(seqs))
    assert mq.occupancy == len(set(seqs))


# ---------------------------------------------------------------------------
# OrderingToken invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=1, max_value=20), max_size=40))
def test_token_global_seqs_partition_the_integers(run_lengths):
    """Assignments mint each global seq exactly once, contiguously."""
    t = OrderingToken(gid="g")
    local = 0
    covered = []
    for n in run_lengths:
        e = t.assign("s", "node", local, local + n - 1, ttl_hops=10_000)
        covered.extend(range(e.min_global, e.max_global + 1))
        local += n
    assert covered == list(range(t.next_global_seq))


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=1, max_value=10)),
                max_size=30))
def test_token_lookup_matches_assignment(runs):
    t = OrderingToken(gid="g")
    next_local = {"a": 0, "b": 0, "c": 0}
    expected = {}
    for node, n in runs:
        lo = next_local[node]
        e = t.assign(f"src-{node}", node, lo, lo + n - 1, ttl_hops=10_000)
        for i in range(n):
            expected[(node, lo + i)] = e.min_global + i
        next_local[node] = lo + n
    for (node, lseq), g in expected.items():
        found = t.lookup(node, lseq)
        assert found is not None
        assert found.global_for(lseq) == g


# ---------------------------------------------------------------------------
# WorkingTable invariants
# ---------------------------------------------------------------------------
@given(st.dictionaries(st.sampled_from(["c1", "c2", "c3", "c4"]),
                       st.lists(st.integers(min_value=0, max_value=100),
                                max_size=20),
                       min_size=1))
def test_wt_min_across_is_true_min(progress):
    wt = WorkingTable()
    for child in progress:
        wt.add_child(child, -1)
    for child, seqs in progress.items():
        for s in seqs:
            wt.record_delivered(child, s)
    expected = min(max(seqs, default=-1) for seqs in progress.values())
    assert wt.min_delivered_across() == expected


# ---------------------------------------------------------------------------
# LogicalRing invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                max_size=20, unique=True))
def test_ring_next_prev_inverse(ids):
    ring = LogicalRing("r", [f"n{i}" for i in ids])
    for node in ring:
        assert ring.prev_of(ring.next_of(node)) == node
        assert ring.next_of(ring.prev_of(node)) == node


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=2,
                max_size=20, unique=True),
       st.data())
def test_ring_walk_visits_all_once(ids, data):
    ring = LogicalRing("r", [f"n{i}" for i in ids])
    start = data.draw(st.sampled_from(ring.members))
    seen = []
    node = start
    for _ in range(len(ring)):
        seen.append(node)
        node = ring.next_of(node)
    assert node == start
    assert sorted(seen) == sorted(ring.members)


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=2,
                max_size=12, unique=True),
       st.data())
def test_ring_removal_preserves_cycle(ids, data):
    ring = LogicalRing("r", [f"n{i}" for i in ids])
    victim = data.draw(st.sampled_from(ring.members))
    ring.remove_member(victim)
    assert victim not in ring
    assert ring.leader in ring
    # Remaining members still form one cycle.
    node = ring.members[0]
    for _ in range(len(ring)):
        node = ring.next_of(node)
    assert node == ring.members[0]


# ---------------------------------------------------------------------------
# Transport dedup invariant
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=60))
def test_transport_seen_floor_compaction(seqs):
    """The receiver-side dedup filter is exactly 'seen before' regardless
    of arrival order and floor compaction."""

    class Dummy:
        pass

    chan = ReliableChannel.__new__(ReliableChannel)
    chan._seen_floor = {}
    chan._seen_sparse = {}
    seen_ref = set()
    for s in seqs:
        expected = s in seen_ref
        assert chan._already_seen("p", s) == expected
        if not expected:
            chan._mark_seen("p", s)
            seen_ref.add(s)
    # Memory bound: the sparse set holds only the out-of-order suffix.
    floor = chan._seen_floor["p"]
    assert all(s >= floor for s in chan._seen_sparse["p"])


# ---------------------------------------------------------------------------
# Percentile / summary sanity
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_summary_ordering(values):
    s = summarize(values)
    assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]
    # One ulp of slack: numpy's mean of identical values can differ in
    # the last bit from the values themselves.
    eps = 1e-9 * max(1.0, s["max"])
    assert min(values) - eps <= s["mean"] <= s["max"] + eps


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=1, max_size=100),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_range(values, q):
    p = percentile(values, q)
    assert min(values) <= p <= max(values)


# ---------------------------------------------------------------------------
# RandomStreams reproducibility
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1,
                                                          max_size=20))
@settings(max_examples=25)
def test_streams_reproducible_for_any_seed_and_name(seed, name):
    a = RandomStreams(seed).get(name).random()
    b = RandomStreams(seed).get(name).random()
    assert a == b
