"""Unit tests for generator-based processes and signals."""

import pytest

from repro.sim.process import Process, Signal, Timeout, WaitSignal


def test_timeout_advances_time(sim):
    log = []

    def script():
        yield Timeout(2.0)
        log.append(sim.now)
        yield Timeout(3.0)
        log.append(sim.now)

    Process(sim, script())
    sim.run()
    assert log == [2.0, 5.0]


def test_process_result_captured(sim):
    def script():
        yield Timeout(1.0)
        return 42

    p = Process(sim, script())
    sim.run()
    assert p.result == 42
    assert not p.alive


def test_zero_timeout_allowed(sim):
    log = []

    def script():
        yield Timeout(0.0)
        log.append(sim.now)

    Process(sim, script())
    sim.run()
    assert log == [0.0]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_wait_signal_blocks_until_fire(sim):
    sig = Signal("go")
    log = []

    def waiter():
        value = yield WaitSignal(sig)
        log.append((sim.now, value))

    Process(sim, waiter())
    sim.schedule(7.0, sig.fire, "hello")
    sim.run()
    assert log == [(7.0, "hello")]


def test_signal_wakes_all_waiters(sim):
    sig = Signal()
    woken = []

    def waiter(tag):
        yield WaitSignal(sig)
        woken.append(tag)

    Process(sim, waiter("a"))
    Process(sim, waiter("b"))
    sim.schedule(1.0, sig.fire)
    sim.run()
    assert sorted(woken) == ["a", "b"]


def test_signal_fire_with_no_waiters_is_noop(sim):
    sig = Signal()
    sig.fire("ignored")
    assert sig.fired_count == 1


def test_done_signal_chains_processes(sim):
    log = []

    def first():
        yield Timeout(2.0)
        return "first-done"

    p1 = Process(sim, first())

    def second():
        value = yield WaitSignal(p1.done_signal)
        log.append((sim.now, value))

    Process(sim, second())
    sim.run()
    assert log == [(2.0, "first-done")]


def test_interrupt_stops_process(sim):
    log = []

    def script():
        yield Timeout(1.0)
        log.append("should not happen")

    p = Process(sim, script())
    p.interrupt()
    sim.run()
    assert log == []
    assert not p.alive


def test_bad_yield_raises(sim):
    def script():
        yield "not a directive"

    Process(sim, script())
    with pytest.raises(TypeError):
        sim.run()


def test_processes_interleave(sim):
    log = []

    def ticker(name, period, count):
        for _ in range(count):
            yield Timeout(period)
            log.append((name, sim.now))

    Process(sim, ticker("fast", 1.0, 3))
    Process(sim, ticker("slow", 2.0, 2))
    sim.run()
    # Times interleave as wall-clock dictates; the t=2.0 tie between the
    # two tickers resolves in causal-key order (deterministic, but not
    # scheduling order — see the engine's design notes).
    assert [t for _, t in log] == [1.0, 2.0, 2.0, 3.0, 4.0]
    assert sorted(log) == [("fast", 1.0), ("fast", 2.0), ("fast", 3.0),
                           ("slow", 2.0), ("slow", 4.0)]
