"""Scenario-fuzzing harness tests."""

import json
import random

import pytest

from repro.experiments.runner import build_scenario
from repro.experiments.spec import ExperimentSpec
from repro.validation.fuzz import FuzzReport, fuzz, random_spec


# ---------------------------------------------------------------------------
# Generator properties
# ---------------------------------------------------------------------------
def _specs(seed, n, duration=2_000.0):
    rng = random.Random(seed)
    return [random_spec(rng, index=i, seed=1000 + i, duration_ms=duration)
            for i in range(n)]


def test_generated_specs_are_valid_and_buildable():
    for spec in _specs(seed=42, n=30):
        # Spec validation happened in the constructors; the runner's
        # constraints (s <= r, depth/system/mobility coupling, crash
        # targets that exist) must hold too: building proves it.
        scenario = build_scenario(spec.copy())
        assert scenario.duration_ms == spec.duration_ms


def test_generated_specs_roundtrip_json():
    for spec in _specs(seed=7, n=20):
        assert ExperimentSpec.from_json(spec.to_json()) == spec


def test_generation_is_seed_deterministic():
    a = [s.to_json() for s in _specs(seed=5, n=15)]
    b = [s.to_json() for s in _specs(seed=5, n=15)]
    assert a == b
    c = [s.to_json() for s in _specs(seed=6, n=15)]
    assert a != c


def test_generator_covers_the_scenario_space():
    specs = _specs(seed=3, n=60)
    systems = {s.system for s in specs}
    assert "ringnet" in systems and len(systems) >= 2
    assert any(s.churn.enabled for s in specs)
    assert any(s.mobility.enabled for s in specs)
    assert any(s.failures for s in specs)
    assert any(s.workload.pattern == "poisson" for s in specs)
    # Constraint: never more sources than top-ring members (s <= r).
    for s in specs:
        if s.system == "ringnet":
            assert s.workload.s <= s.hierarchy.n_br


# ---------------------------------------------------------------------------
# Campaign harness
# ---------------------------------------------------------------------------
def test_small_campaign_is_clean_and_reproducible():
    a = fuzz(budget=3, base_seed=123, duration_ms=1_200.0)
    assert isinstance(a, FuzzReport)
    assert a.ok, a.failed_cases
    assert len(a.cases) == 3
    assert all(c["deliveries"] > 0 for c in a.cases)
    b = fuzz(budget=3, base_seed=123, duration_ms=1_200.0)
    assert a.to_dict() == b.to_dict()


def test_campaign_report_shape():
    report = fuzz(budget=2, base_seed=9, duration_ms=1_000.0)
    doc = report.to_dict()
    assert doc["schema"] == "repro.validation.fuzz/v1"
    assert doc["budget"] == 2 and doc["n_failed_cases"] == 0
    json.dumps(doc)  # serializable as-is
    # Passing cases stay compact: no embedded spec.
    assert all("spec" not in c for c in doc["cases"])


def test_fuzz_budget_validation():
    with pytest.raises(ValueError):
        fuzz(budget=0)


def test_progress_callback_sees_every_case():
    seen = []
    fuzz(budget=2, base_seed=1, duration_ms=1_000.0,
         progress=lambda i, total, result: seen.append((i, total,
                                                        result.ok)))
    assert [s[:2] for s in seen] == [(0, 2), (1, 2)]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_fuzz_writes_report(tmp_path, capsys):
    from repro.validation.__main__ import main
    out = str(tmp_path / "report.json")
    code = main(["fuzz", "--budget", "2", "--duration", "1000",
                 "--seed", "321", "--quiet", "--out", out])
    assert code == 0
    doc = json.loads(open(out).read())
    assert doc["ok"] is True and doc["budget"] == 2
    assert "fuzz: 2 cases" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Fault-plan synthesis
# ---------------------------------------------------------------------------
def test_generator_synthesizes_fault_plans():
    specs = _specs(seed=42, n=80)
    with_plans = [s for s in specs if s.faults]
    assert with_plans, "no generated spec carried a fault plan"
    kinds = {a.kind for s in with_plans for a in s.faults}
    assert len(kinds) >= 2  # several action families get exercised
    for s in with_plans:
        # Plans only ride on the system that can absorb them, with the
        # widened retry budget the token needs to survive an outage.
        assert s.system == "ringnet" and s.hierarchy.depth == 1
        assert s.protocol.get("max_retries") == 12


def test_generated_fault_plans_are_bounded():
    for s in _specs(seed=9, n=120, duration=2_500.0):
        for a in s.faults:
            assert a.at_ms <= 0.35 * s.duration_ms
            end = a.end_ms()
            if a.kind == "partition":
                assert end is not None, "fuzzed partitions must heal"
                assert end - a.at_ms <= 250.0
            else:
                assert end is not None and end - a.at_ms <= 1_200.0


def test_fault_plan_specs_roundtrip_json():
    plans = [s for s in _specs(seed=42, n=80) if s.faults]
    for s in plans[:5]:
        assert ExperimentSpec.from_json(s.to_json()) == s


def test_fuzz_smoke_ten_seeded_fault_plans_are_clean():
    """Ten generated specs *with* fault plans, full monitor suite, zero
    violations (the PR's fault-fuzzing conformance gate)."""
    from repro.validation.fuzz import _campaign_recovery_window
    from repro.validation.suite import check_spec, standard_suite

    duration = 2_500.0
    rng = random.Random(20260729)
    cases = []
    for i in range(400):
        spec = random_spec(rng, index=i, seed=5000 + i,
                           duration_ms=duration)
        if spec.faults:
            cases.append(spec)
        if len(cases) == 10:
            break
    assert len(cases) == 10, "generator starved the smoke test"
    window = _campaign_recovery_window(duration)
    for spec in cases:
        suite = standard_suite(spec.system, recovery_window_ms=window)
        result = check_spec(spec, suite=suite)
        assert result.ok, (spec.name, spec.faults.to_dict(),
                           result.violations[:3])
