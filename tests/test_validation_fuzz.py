"""Scenario-fuzzing harness tests."""

import json
import random

import pytest

from repro.experiments.runner import build_scenario
from repro.experiments.spec import ExperimentSpec
from repro.validation.fuzz import FuzzReport, fuzz, random_spec


# ---------------------------------------------------------------------------
# Generator properties
# ---------------------------------------------------------------------------
def _specs(seed, n, duration=2_000.0):
    rng = random.Random(seed)
    return [random_spec(rng, index=i, seed=1000 + i, duration_ms=duration)
            for i in range(n)]


def test_generated_specs_are_valid_and_buildable():
    for spec in _specs(seed=42, n=30):
        # Spec validation happened in the constructors; the runner's
        # constraints (s <= r, depth/system/mobility coupling, crash
        # targets that exist) must hold too: building proves it.
        scenario = build_scenario(spec.copy())
        assert scenario.duration_ms == spec.duration_ms


def test_generated_specs_roundtrip_json():
    for spec in _specs(seed=7, n=20):
        assert ExperimentSpec.from_json(spec.to_json()) == spec


def test_generation_is_seed_deterministic():
    a = [s.to_json() for s in _specs(seed=5, n=15)]
    b = [s.to_json() for s in _specs(seed=5, n=15)]
    assert a == b
    c = [s.to_json() for s in _specs(seed=6, n=15)]
    assert a != c


def test_generator_covers_the_scenario_space():
    specs = _specs(seed=3, n=60)
    systems = {s.system for s in specs}
    assert "ringnet" in systems and len(systems) >= 2
    assert any(s.churn.enabled for s in specs)
    assert any(s.mobility.enabled for s in specs)
    assert any(s.failures for s in specs)
    assert any(s.workload.pattern == "poisson" for s in specs)
    # Constraint: never more sources than top-ring members (s <= r).
    for s in specs:
        if s.system == "ringnet":
            assert s.workload.s <= s.hierarchy.n_br


# ---------------------------------------------------------------------------
# Campaign harness
# ---------------------------------------------------------------------------
def test_small_campaign_is_clean_and_reproducible():
    a = fuzz(budget=3, base_seed=123, duration_ms=1_200.0)
    assert isinstance(a, FuzzReport)
    assert a.ok, a.failed_cases
    assert len(a.cases) == 3
    assert all(c["deliveries"] > 0 for c in a.cases)
    b = fuzz(budget=3, base_seed=123, duration_ms=1_200.0)
    assert a.to_dict() == b.to_dict()


def test_campaign_report_shape():
    report = fuzz(budget=2, base_seed=9, duration_ms=1_000.0)
    doc = report.to_dict()
    assert doc["schema"] == "repro.validation.fuzz/v1"
    assert doc["budget"] == 2 and doc["n_failed_cases"] == 0
    json.dumps(doc)  # serializable as-is
    # Passing cases stay compact: no embedded spec.
    assert all("spec" not in c for c in doc["cases"])


def test_fuzz_budget_validation():
    with pytest.raises(ValueError):
        fuzz(budget=0)


def test_progress_callback_sees_every_case():
    seen = []
    fuzz(budget=2, base_seed=1, duration_ms=1_000.0,
         progress=lambda i, total, result: seen.append((i, total,
                                                        result.ok)))
    assert [s[:2] for s in seen] == [(0, 2), (1, 2)]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_fuzz_writes_report(tmp_path, capsys):
    from repro.validation.__main__ import main
    out = str(tmp_path / "report.json")
    code = main(["fuzz", "--budget", "2", "--duration", "1000",
                 "--seed", "321", "--quiet", "--out", out])
    assert code == 0
    doc = json.loads(open(out).read())
    assert doc["ok"] is True and doc["budget"] == 2
    assert "fuzz: 2 cases" in capsys.readouterr().out
