"""Causal span trees (`repro.obs.spans` / `repro.obs.critpath`).

The two load-bearing properties, checked over the full registry:

* **completeness** — every ``mh.deliver``-traced message assembles into
  exactly one rooted span tree with no orphan segment events, under the
  sequential engine and at 2 and 4 shards;
* **zero protocol perturbation** — the canonical trace stream recorded
  with a collector attached stays byte-identical to the committed
  seed goldens (spans are out-of-band: same runs serve as the
  spans-ON identity proof the seed tests provide for spans-OFF).

Plus unit coverage for deterministic sampling, the gzip span stream,
the exact stage partition, the critpath summary, the Chrome-trace
export, the bench-compare span table, the live lag gauges, and the
profiler stride override.
"""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.experiments import registry
from repro.obs.critpath import (STAGE_ORDER, chrome_trace, critpath_summary,
                                dominant_stage, iter_deliveries,
                                render_critpath, render_stage_delta,
                                stage_delta, stage_means)
from repro.obs.spans import (RATE_ENV, SpanCollector, SpanStreamWriter,
                             assemble, completeness, default_rate,
                             events_from_trace, read_span_events, sampled,
                             write_span_events)
from repro.validation.record import TraceRecorder, first_divergence
from repro.validation.suite import observed_scenario

TRACE_DIR = os.path.join(os.path.dirname(__file__), "data", "seed_traces")

# Same horizons the trace-identity suite records the goldens at.
DURATIONS = {
    "failure_drill": 7000.0,
    "correlated_ap_failures": 6000.0,
}
DEFAULT_DURATION = 2500.0


def spec_for(name: str):
    duration = DURATIONS.get(name, DEFAULT_DURATION)
    spec = registry.get(name)
    overrides = {"duration_ms": duration}
    if spec.warmup_ms >= duration:
        overrides["warmup_ms"] = duration / 2
    return spec.with_overrides(overrides)


def golden_lines(name: str):
    path = os.path.join(TRACE_DIR, f"{name}.jsonl.gz")
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return [line.rstrip("\n") for line in fh if line.strip()]


def deliver_keys(lines):
    """``(source, local_seq)`` of every payload-deliver trace record."""
    keys = set()
    for line in lines:
        if "mh.deliver" not in line:
            continue
        rec = json.loads(line)
        if rec.get("k") != "mh.deliver":
            continue
        attrs = rec["a"]
        keys.add((attrs["source"], attrs["local_seq"]))
    return keys


def assert_complete(events, lines, label):
    """Every delivered message = exactly one rooted span tree."""
    spanset = assemble(events)
    comp = completeness(spanset)
    assert comp["ok"], (
        f"{label}: {len(comp['unrooted'])} unrooted trees, "
        f"{comp['orphan_events']} orphan events")
    delivered = deliver_keys(lines)
    spanned = {s.key for s in spanset.delivered()}
    assert spanned == delivered, (
        f"{label}: span trees disagree with mh.deliver records "
        f"(missing {sorted(delivered - spanned)[:5]}, "
        f"extra {sorted(spanned - delivered)[:5]})")
    return spanset


# ----------------------------------------------------------------------
# Completeness + identity over the full registry (sequential)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", registry.names())
def test_sequential_spans_complete_and_trace_identical(name):
    rec = TraceRecorder()
    collector = SpanCollector()
    with observed_scenario(spec_for(name), rec, collector) as scenario:
        scenario.run()
    div = first_divergence(golden_lines(name), rec.lines)
    assert div is None, (
        f"{name} trace diverged from its seed golden with a span "
        f"collector attached: {div.describe()}")
    assert_complete(collector.events, rec.lines, f"{name} sequential")


# ----------------------------------------------------------------------
# Completeness + identity at 2 and 4 shards
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", registry.names())
def test_sharded_spans_complete_and_trace_identical(name, shards):
    """Spans stitch across shard export boundaries without loss.

    The same runs double as the spans-ON sharded identity proof: the
    merged canonical stream must still equal the sequential golden.
    """
    from repro.shard.runtime import run_sharded

    result = run_sharded(spec_for(name), shards, record=True, spans=True)
    div = first_divergence(golden_lines(name), result.merged_lines or [])
    assert div is None, (
        f"{name} @ {shards} shards diverged from the sequential golden "
        f"with span collectors attached: {div.describe()}")
    assert_complete(result.span_events or [], result.merged_lines or [],
                    f"{name} @ {shards} shards")
    # Window-stall accounting rides along as a run-level overlay.
    overlays = result.span_overlays()
    assert "window_stall" in overlays
    assert len(overlays["window_stall"]["barrier_wait_s_per_shard"]) == shards


def test_sharded_span_stream_equals_sequential():
    """The deterministically merged stream is the sequential stream."""
    from repro.shard.runtime import run_sharded

    spec = spec_for("quickstart")
    collector = SpanCollector()
    with observed_scenario(spec, collector) as scenario:
        scenario.run()
    sequential = sorted(
        collector.events,
        key=lambda ev: (ev[1], ev[0], tuple(str(x) for x in ev[2:])))
    for shards in (2, 4):
        result = run_sharded(spec, shards, spans=True)
        assert result.span_events == sequential, (
            f"{shards}-shard span stream differs from sequential")


# ----------------------------------------------------------------------
# Deterministic sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_rate_one_keeps_everything(self):
        assert all(sampled(seq, 1.0) for seq in range(200))

    def test_sampling_is_deterministic(self):
        kept = [seq for seq in range(500) if sampled(seq, 0.25)]
        again = [seq for seq in range(500) if sampled(seq, 0.25)]
        assert kept == again
        assert 0 < len(kept) < 500

    def test_lower_rates_nest(self):
        # crc32 thresholding: the 10% keep-set is a subset of the 50%.
        low = {seq for seq in range(2000) if sampled(seq, 0.1)}
        high = {seq for seq in range(2000) if sampled(seq, 0.5)}
        assert low <= high

    def test_default_rate_env(self, monkeypatch):
        monkeypatch.delenv(RATE_ENV, raising=False)
        assert default_rate() == 1.0
        monkeypatch.setenv(RATE_ENV, "0.25")
        assert default_rate() == 0.25
        monkeypatch.setenv(RATE_ENV, "1.5")
        with pytest.raises(ValueError):
            default_rate()
        monkeypatch.setenv(RATE_ENV, "0")
        with pytest.raises(ValueError):
            default_rate()

    def test_sampled_collector_keeps_whole_trees(self):
        spec = spec_for("quickstart")
        full = SpanCollector()
        with observed_scenario(spec, full) as scenario:
            scenario.run()
        part = SpanCollector(rate=0.4)
        with observed_scenario(spec, part) as scenario:
            scenario.run()
        all_set = assemble(full.events)
        sub_set = assemble(part.events)
        assert 0 < len(sub_set.spans) < len(all_set.spans)
        assert completeness(sub_set)["ok"]
        # A sampled tree carries every event its full twin does.
        for key, span in sub_set.spans.items():
            twin = all_set.spans[key]
            assert span.send_t == twin.send_t
            assert len(span.deliveries) == len(twin.deliveries)
            assert len(span.hops) == len(twin.hops)


# ----------------------------------------------------------------------
# Span stream file round-trip
# ----------------------------------------------------------------------
class TestSpanStream:
    EVENTS = [
        ("send", 1.5, "src0", 0, "<g0>"),
        ("wq", 2.25, "ne1", 0),
        ("segs", 1.75, "src0", "ne1", "SourceData", "src0", 0, 1, "g0"),
        ("dlv", 9.0, "mh3", "src0", 0, 7, 7.5),
    ]

    def test_round_trip_preserves_tuples(self, tmp_path):
        path = str(tmp_path / "spans.jsonl.gz")
        n = write_span_events(path, self.EVENTS)
        assert n == len(self.EVENTS)
        assert read_span_events(path) == self.EVENTS

    def test_plain_jsonl_and_small_window(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        write_span_events(path, self.EVENTS * 10, window=3)
        assert read_span_events(path) == self.EVENTS * 10

    def test_deterministic_bytes(self, tmp_path):
        # Same basename (gzip stores it in the header, like the trace
        # sink), different runs: the bytes must match exactly.
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = str(tmp_path / "a" / "spans.jsonl.gz")
        b = str(tmp_path / "b" / "spans.jsonl.gz")
        write_span_events(a, self.EVENTS)
        write_span_events(b, self.EVENTS)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_writer_is_context_manager(self, tmp_path):
        path = str(tmp_path / "cm.jsonl.gz")
        with SpanStreamWriter(path) as sink:
            for ev in self.EVENTS:
                sink.write(ev)
        assert read_span_events(path) == self.EVENTS

    def test_collector_streaming_sink(self, tmp_path):
        from repro.obs.spans import collect_spec
        spec = spec_for("quickstart")
        in_memory = collect_spec(spec)
        path = str(tmp_path / "stream.jsonl.gz")
        streamed = collect_spec(spec, stream_path=path)
        assert streamed == []  # events went to disk, not memory
        assert read_span_events(path) == in_memory


# ----------------------------------------------------------------------
# Stage partition and critpath summary
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def quickstart_spans():
    collector = SpanCollector()
    with observed_scenario(spec_for("quickstart"), collector) as scenario:
        scenario.run()
    return assemble(collector.events)


class TestCritpath:
    def test_stage_partition_is_exact(self, quickstart_spans):
        count = 0
        for span, d, total, stages in iter_deliveries(quickstart_spans):
            assert total == pytest.approx(d.t - span.send_t)
            assert sum(stages.values()) == pytest.approx(total)
            assert set(stages) <= set(STAGE_ORDER)
            count += 1
        assert count > 0

    def test_summary_shape(self, quickstart_spans):
        summary = critpath_summary(quickstart_spans)
        assert summary["deliveries"] > 0
        shares = [st["share"] for st in summary["stages"].values()]
        assert sum(shares) == pytest.approx(1.0, abs=1e-6)
        for band in summary["bands"]:
            if band["count"]:
                assert band["dominant"] in STAGE_ORDER
        assert summary["mean_total_ms"] > 0
        # JSON-able end to end.
        json.dumps(summary)

    def test_overlays_pass_through(self, quickstart_spans):
        overlays = {"window_stall": {"wall_ms_total": 12.5}}
        summary = critpath_summary(quickstart_spans, overlays=overlays)
        assert summary["overlays"] == overlays

    def test_dominant_stage_tie_breaks_causally(self):
        assert dominant_stage({"ring": 1.0, "uplink": 1.0}) == "uplink"
        assert dominant_stage({}) is None

    def test_render_smoke(self, quickstart_spans):
        text = render_critpath(critpath_summary(quickstart_spans), "q")
        assert "dominant stage" in text
        assert "uplink" in text

    def test_stage_delta_and_render(self):
        cur = {"uplink": 2.0, "ring": 5.0}
        base = {"uplink": 1.0, "downlink": 3.0}
        rows = stage_delta(cur, base)
        by_stage = {r["stage"]: r for r in rows}
        assert by_stage["uplink"]["delta_ms"] == pytest.approx(1.0)
        assert by_stage["ring"]["baseline_ms"] is None
        assert by_stage["downlink"]["current_ms"] is None
        text = render_stage_delta(rows, "live", "sim")
        assert "uplink" in text and "live" in text

    def test_coarse_assembly_from_golden(self):
        lines = golden_lines("quickstart")
        spanset = assemble(events_from_trace(lines))
        comp = completeness(spanset)
        assert comp["ok"]
        assert {s.key for s in spanset.delivered()} == deliver_keys(lines)
        # No hop detail in a trace: stage math falls back to fanout.
        stages = stage_means(critpath_summary(spanset))
        assert "fanout" in stages


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_structure(self, quickstart_spans):
        payload = chrome_trace(quickstart_spans, limit=10)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert e["name"] in STAGE_ORDER
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert 0 < len(tids) <= 10

    def test_limit_none_exports_all(self, quickstart_spans):
        payload = chrome_trace(quickstart_spans, limit=None)
        tids = {e["tid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        rooted = [s for s in quickstart_spans.delivered()
                  if s.send_t is not None]
        assert len(tids) == len(rooted)


# ----------------------------------------------------------------------
# Satellite: bench compare span table
# ----------------------------------------------------------------------
def _bench_report(name, rate, stages):
    entry = {"name": name, "events_per_sec": rate, "peak_rss": 0}
    if stages is not None:
        entry["span_stages"] = stages
    return {"schema": "repro.bench/v1", "results": [entry]}


class TestCompareSpanTable:
    def test_table_built_when_both_sides_carry_stages(self):
        from repro.bench.compare import compare_reports
        cur = _bench_report("xs", 1000.0, {"uplink": 2.0, "ring": 4.0})
        base = _bench_report("xs", 1000.0, {"uplink": 1.5, "ring": 4.5})
        cmp = compare_reports(cur, base)
        assert "xs" in cmp.span_tables
        rows = {r["stage"]: r for r in cmp.span_tables["xs"]}
        assert rows["uplink"]["delta_ms"] == pytest.approx(0.5)
        assert cmp.to_dict()["span_tables"]["xs"]
        assert cmp.ok  # informational: never gates

    def test_no_table_when_one_side_missing(self):
        from repro.bench.compare import compare_reports
        cur = _bench_report("xs", 1000.0, {"uplink": 2.0})
        base = _bench_report("xs", 1000.0, None)
        assert compare_reports(cur, base).span_tables == {}


def test_measure_spec_spans_digest():
    from repro.bench.measure import measure_spec
    spec = spec_for("quickstart").with_overrides({"duration_ms": 1200.0})
    result = measure_spec(spec, spans=True)
    assert result.span_events
    assert result.span_stages
    assert set(result.span_stages) <= set(STAGE_ORDER)
    assert "span_stages" in result.to_dict()
    plain = measure_spec(spec)
    assert plain.span_events is None
    assert "span_stages" not in plain.to_dict()


# ----------------------------------------------------------------------
# Satellite: live lag gauges
# ----------------------------------------------------------------------
def test_live_obs_report_carries_lag_gauges():
    from repro.live.builder import NetworkBuilder
    from repro.obs.report import render_summary

    spec = registry.get("quickstart", duration_ms=600.0, warmup_ms=100.0)
    run = NetworkBuilder(spec, fabric="queue", time_scale=0.02).build()
    run.run()
    report = run.obs_report()
    assert report["schema"] == "repro.obs/v1"
    gauges = report["registry"]["gauges"]
    lag = run.runtime.lag_report()
    assert gauges["live.max_lag_ms"]["value"] == lag["max_lag_ms"]
    assert gauges["live.mean_lag_ms"]["value"] == lag["mean_lag_ms"]
    assert gauges["live.events"]["value"] == run.runtime.events_processed
    # Protocol counters reached the registry through runtime.obs.
    assert report["registry"]["counters"]
    text = render_summary(report)
    assert "live.max_lag_ms" in text


def test_live_diff_reports_span_stages():
    from repro.live.diff import diff_spec

    spec = registry.get("quickstart", duration_ms=600.0, warmup_ms=100.0)
    report = diff_spec(spec, time_scale=0.02)
    stages = report["span_stages"]
    assert stages["sim"] and stages["live"]
    assert stages["delta"]
    for row in stages["delta"]:
        assert row["stage"] in STAGE_ORDER


# ----------------------------------------------------------------------
# Satellite: profiler stride override
# ----------------------------------------------------------------------
class TestSampleEvery:
    def test_default_and_env(self, monkeypatch):
        from repro.obs.session import (DEFAULT_STRIDE, STRIDE_ENV,
                                       effective_stride)
        monkeypatch.delenv(STRIDE_ENV, raising=False)
        assert effective_stride() == DEFAULT_STRIDE
        monkeypatch.setenv(STRIDE_ENV, "8")
        assert effective_stride() == 8
        assert effective_stride(4) == 4  # explicit beats env
        monkeypatch.setenv(STRIDE_ENV, "0")
        with pytest.raises(ValueError):
            effective_stride()

    def test_report_stamps_effective_stride(self, monkeypatch):
        from repro.experiments.runner import build_scenario
        from repro.obs.report import render_summary
        from repro.obs.session import STRIDE_ENV, ObsSession
        from repro.sim.engine import Simulator

        monkeypatch.setenv(STRIDE_ENV, "16")
        spec = registry.get("quickstart", duration_ms=400.0, warmup_ms=100.0)
        sim = Simulator(seed=spec.seed)
        scenario = build_scenario(spec, sim=sim)
        session = ObsSession(sim, horizon_ms=spec.duration_ms, name="q")
        scenario.run()
        report = session.report()
        assert report["sample_every"] == 16
        assert report["profiler"]["stride"] == 16
        assert "sampling: every 16 dispatches" in render_summary(report)
