"""Unit tests for the protocol-invariant monitor family."""

import pytest

from repro.metrics.order_checker import OrderChecker
from repro.sim.trace import TraceBus
from repro.validation.monitor import Monitor, MonitorSuite
from repro.validation.monitors import (
    BoundsMonitor,
    HandoffMonitor,
    MembershipMonitor,
    QuiescenceMonitor,
    TokenMonitor,
)
from repro.validation.suite import check_spec, standard_suite


# ---------------------------------------------------------------------------
# Base contract
# ---------------------------------------------------------------------------
def test_monitor_attach_detach_roundtrip():
    bus = TraceBus()
    mon = TokenMonitor()
    base = bus.subscriber_count
    mon.attach(bus)
    assert bus.subscriber_count > base
    mon.detach()
    assert bus.subscriber_count == base


def test_monitor_double_attach_rejected():
    bus = TraceBus()
    mon = TokenMonitor(bus)
    with pytest.raises(RuntimeError):
        mon.attach(bus)


def test_monitor_violation_cap_suppresses():
    class Noisy(Monitor):
        name = "noisy"
        max_violations = 3

    mon = Noisy()
    for i in range(10):
        mon.violation(f"v{i}")
    assert len(mon.violations) == 3
    assert mon.suppressed == 7
    assert mon.violation_count == 10
    assert not mon.ok


def test_suite_rejects_duplicate_names():
    with pytest.raises(ValueError):
        MonitorSuite([TokenMonitor(), TokenMonitor()])


def test_suite_prefixes_violations_and_reports():
    bus = TraceBus()
    suite = MonitorSuite([TokenMonitor(), MembershipMonitor()])
    suite.attach(bus)
    bus.emit(1.0, "mh.deliver", mh="mh:x", gseq=0, source="s", local_seq=0)
    suite.detach()
    vs = suite.all_violations()
    assert len(vs) == 1 and vs[0].startswith("membership: ")
    assert set(suite.report()) == {"token", "membership"}
    with pytest.raises(AssertionError):
        suite.assert_ok()


# ---------------------------------------------------------------------------
# TokenMonitor
# ---------------------------------------------------------------------------
def test_token_monitor_clean_stream_ok():
    bus = TraceBus()
    mon = TokenMonitor(bus)
    tid = (0, "br:0")
    for i, node in enumerate(["br:0", "br:1", "br:2"] * 3):
        bus.emit(float(i), "token.hold", node=node, next_gseq=i,
                 token_id=tid)
        bus.emit(float(i), "ordered", node=node, gseq=i,
                 ordering_node="br:0", local_seq=i, created_at=0.0)
    mon.finish(end_time=9.0)
    assert mon.ok
    assert mon.report()["holds"] == 9


def test_token_monitor_flags_gseq_regression():
    bus = TraceBus()
    mon = TokenMonitor(bus)
    tid = (0, "br:0")
    bus.emit(1.0, "token.hold", node="br:0", next_gseq=10, token_id=tid)
    bus.emit(2.0, "token.hold", node="br:1", next_gseq=4, token_id=tid)
    assert any("regressed" in v for v in mon.violations)


def test_token_monitor_flags_double_mint():
    bus = TraceBus()
    mon = TokenMonitor(bus)
    bus.emit(1.0, "ordered", node="br:0", gseq=5, ordering_node="br:0",
             local_seq=3)
    bus.emit(2.0, "ordered", node="br:1", gseq=5, ordering_node="br:2",
             local_seq=9)
    assert any("uniqueness" in v for v in mon.violations)


def test_token_monitor_flags_destroyed_token_resurrection():
    bus = TraceBus()
    mon = TokenMonitor(bus)
    tid = (1, "br:1")
    bus.emit(1.0, "token.destroyed", node="br:0", token_id=tid)
    bus.emit(2.0, "token.hold", node="br:2", next_gseq=0, token_id=tid)
    assert any("destroyed token" in v for v in mon.violations)


def test_token_monitor_liveness_window():
    bus = TraceBus()
    mon = TokenMonitor(bus, liveness_window_ms=100.0)
    bus.emit(1.0, "token.hold", node="br:0", next_gseq=0,
             token_id=(0, "br:0"))
    mon.finish(end_time=5_000.0)
    assert any("liveness" in v for v in mon.violations)


def test_token_monitor_liveness_skipped_without_window_or_holds():
    bus = TraceBus()
    mon = TokenMonitor(bus)           # no window, no net at finish
    bus.emit(1.0, "token.hold", node="br:0", next_gseq=0,
             token_id=(0, "br:0"))
    mon.finish(end_time=9_999.0)
    assert mon.ok
    quiet = TokenMonitor(TraceBus(), liveness_window_ms=10.0)
    quiet.finish(end_time=9_999.0)    # no holds ever: nothing to require
    assert quiet.ok


# ---------------------------------------------------------------------------
# MembershipMonitor
# ---------------------------------------------------------------------------
def _join_member(bus, mh="mh:a", ap="ap:0", base=-1, t=0.0):
    bus.emit(t, "mh.join", mh=mh, ap=ap)
    bus.emit(t + 1, "mh.member", mh=mh, base=base)


def test_membership_deliver_after_leave_flagged():
    bus = TraceBus()
    mon = MembershipMonitor(bus)
    _join_member(bus)
    bus.emit(2.0, "mh.deliver", mh="mh:a", gseq=0, source="s", local_seq=0)
    bus.emit(3.0, "mh.leave", mh="mh:a", ap="ap:0")
    bus.emit(4.0, "mh.deliver", mh="mh:a", gseq=1, source="s", local_seq=1)
    assert any("after leaving" in v for v in mon.violations)


def test_membership_deliver_without_join_flagged():
    bus = TraceBus()
    mon = MembershipMonitor(bus)
    bus.emit(1.0, "mh.deliver", mh="mh:ghost", gseq=0, source="s",
             local_seq=0)
    assert any("without ever joining" in v for v in mon.violations)


def test_membership_handoff_rejoin_allowed():
    bus = TraceBus()
    mon = MembershipMonitor(bus)
    _join_member(bus)
    bus.emit(2.0, "mh.leave", mh="mh:a", ap="ap:0")
    bus.emit(3.0, "mh.handoff", mh="mh:a", old="ap:0", new="ap:1", front=-1)
    bus.emit(4.0, "mh.member", mh="mh:a", base=7)
    assert mon.ok


def test_membership_event_view_multi_registration():
    bus = TraceBus()
    mon = MembershipMonitor(bus, settle_ms=100.0)
    _join_member(bus)
    bus.emit(2.0, "ap.register", node="ap:0", mh="mh:a", base=-1,
             joining=True)
    bus.emit(3.0, "ap.register", node="ap:1", mh="mh:a", base=-1,
             joining=False)
    mon.finish(net=None, end_time=1_000.0)
    assert any("registered at 2" in v for v in mon.violations)


def test_membership_settle_window_masks_inflight_state():
    bus = TraceBus()
    mon = MembershipMonitor(bus, settle_ms=500.0)
    _join_member(bus)
    bus.emit(999.0, "ap.register", node="ap:0", mh="mh:a", base=-1,
             joining=True)
    bus.emit(999.5, "ap.register", node="ap:1", mh="mh:a", base=-1,
             joining=False)
    mon.finish(net=None, end_time=1_000.0)  # handoff still settling
    assert mon.ok


# ---------------------------------------------------------------------------
# HandoffMonitor
# ---------------------------------------------------------------------------
def _deliver(bus, gseq, mh="mh:a", t=None):
    bus.emit(t if t is not None else float(gseq), "mh.deliver", mh=mh,
             gseq=gseq, source="s", local_seq=gseq)


def test_handoff_atomic_switch_ok():
    bus = TraceBus()
    mon = HandoffMonitor(bus)
    bus.emit(0.0, "mh.member", mh="mh:a", base=-1)
    for g in range(3):
        _deliver(bus, g)
    bus.emit(3.0, "mh.handoff", mh="mh:a", old="ap:0", new="ap:1", front=2)
    _deliver(bus, 3, t=4.0)
    _deliver(bus, 4, t=5.0)
    assert mon.ok
    assert mon.report()["handoffs"] == 1


def test_handoff_gap_flagged():
    bus = TraceBus()
    mon = HandoffMonitor(bus)
    bus.emit(0.0, "mh.member", mh="mh:a", base=-1)
    for g in range(3):
        _deliver(bus, g)
    bus.emit(3.0, "mh.handoff", mh="mh:a", old="ap:0", new="ap:1", front=2)
    _deliver(bus, 5, t=4.0)  # skipped 3 and 4
    assert any("gap across handoff" in v for v in mon.violations)


def test_handoff_duplicate_flagged():
    bus = TraceBus()
    mon = HandoffMonitor(bus)
    bus.emit(0.0, "mh.member", mh="mh:a", base=-1)
    for g in range(3):
        _deliver(bus, g)
    bus.emit(3.0, "mh.handoff", mh="mh:a", old="ap:0", new="ap:1", front=2)
    _deliver(bus, 1, t=4.0)  # already delivered before the switch
    assert any("duplicate across handoff" in v for v in mon.violations)


def test_handoff_tombstone_resumes_without_gap():
    bus = TraceBus()
    mon = HandoffMonitor(bus)
    bus.emit(0.0, "mh.member", mh="mh:a", base=-1)
    for g in range(3):
        _deliver(bus, g)
    bus.emit(3.0, "mh.handoff", mh="mh:a", old="ap:0", new="ap:1", front=2)
    bus.emit(4.0, "mh.tombstone", mh="mh:a", gseq=3)
    _deliver(bus, 4, t=5.0)
    assert mon.ok


def test_handoff_unknown_front_skips_check():
    bus = TraceBus()
    mon = HandoffMonitor(bus)
    # Baseline-style handoff (front=-1): atomicity unverifiable.
    bus.emit(1.0, "mh.handoff", mh="mh:b", old="ap:0", new="ap:1", front=-1)
    _deliver(bus, 40, mh="mh:b", t=2.0)
    assert mon.ok


# ---------------------------------------------------------------------------
# QuiescenceMonitor
# ---------------------------------------------------------------------------
def test_quiescence_flags_dead_token_after_crash():
    bus = TraceBus()
    mon = QuiescenceMonitor(bus, recovery_window_ms=500.0)
    bus.emit(10.0, "token.hold", node="br:0", next_gseq=0,
             token_id=(0, "br:0"))
    bus.emit(100.0, "fault.crash", node="br:0")
    bus.emit(5_000.0, "source.send", source="src:0", local_seq=9)
    mon.finish(net=None, end_time=6_000.0)
    assert any("token did not resume" in v for v in mon.violations)
    assert any("deliveries did not resume" in v for v in mon.violations)


def test_quiescence_recovered_run_ok():
    bus = TraceBus()
    mon = QuiescenceMonitor(bus, recovery_window_ms=500.0)
    bus.emit(10.0, "token.hold", node="br:0", next_gseq=0,
             token_id=(0, "br:0"))
    bus.emit(100.0, "fault.crash", node="br:0")
    bus.emit(200.0, "token.hold", node="br:1", next_gseq=5,
             token_id=(1, "br:1"))
    bus.emit(250.0, "mh.deliver", mh="mh:a", gseq=3, source="s",
             local_seq=3)
    bus.emit(5_000.0, "source.send", source="src:0", local_seq=9)
    mon.finish(net=None, end_time=6_000.0)
    assert mon.ok


def test_quiescence_token_gate_is_per_crash():
    """A crash before the first hold must not disarm later crashes."""
    bus = TraceBus()
    mon = QuiescenceMonitor(bus, recovery_window_ms=500.0)
    bus.emit(50.0, "fault.crash", node="ap:0")      # before any hold
    bus.emit(100.0, "token.hold", node="br:0", next_gseq=0,
             token_id=(0, "br:0"))
    bus.emit(150.0, "mh.deliver", mh="mh:a", gseq=0, source="s",
             local_seq=0)
    bus.emit(5_000.0, "fault.crash", node="br:0")   # kills the token
    bus.emit(9_000.0, "source.send", source="src:0", local_seq=9)
    mon.finish(net=None, end_time=10_000.0)
    assert any("token did not resume" in v
               and "br:0" in v for v in mon.violations)


def test_quiescence_excuses_fully_orphaned_sources():
    """If every source fed the crashed NE, silence is expected: traffic
    cannot enter the system, so delivery stall is not a violation."""
    from helpers import small_net

    sim, net = small_net(seed=2, n_br=2)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)
    mon = QuiescenceMonitor(sim.trace, recovery_window_ms=400.0)
    net.start()
    src.start()
    sim.schedule_at(500.0, net.crash_ne, "br:0")
    sim.run(until=3_000.0)
    mon.finish(net=net, end_time=sim.now)
    mon.detach()
    assert not any("deliveries did not resume" in v
                   for v in mon.violations)


def test_quiescence_crash_near_end_inside_allowance():
    bus = TraceBus()
    mon = QuiescenceMonitor(bus, recovery_window_ms=500.0)
    bus.emit(10.0, "token.hold", node="br:0", next_gseq=0,
             token_id=(0, "br:0"))
    bus.emit(900.0, "fault.crash", node="br:0")
    mon.finish(net=None, end_time=1_000.0)  # only 100 ms elapsed
    assert mon.ok


# ---------------------------------------------------------------------------
# Integration: clean runs stay clean, per system
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scenario,duration", [
    ("quickstart", 2_500.0),
    ("campus", 3_000.0),
    ("churn_heavy", 3_000.0),
    ("failure_drill", 8_000.0),
])
def test_registry_scenarios_conform(scenario, duration):
    from repro.experiments import registry
    spec = registry.get(scenario, **{"duration_ms": duration,
                                     "warmup_ms": 0.0})
    result = check_spec(spec)
    assert result.violations == []
    assert result.deliveries > 0


def test_unordered_suite_skips_order_and_token_monitors():
    suite = standard_suite("unordered")
    names = {m.name for m in suite}
    assert "token" not in names and "total_order" not in names
    assert {"membership", "bounds", "quiescence"} <= names


def test_ordered_suite_includes_order_checker():
    suite = standard_suite("ringnet")
    assert isinstance(suite.get("total_order"), OrderChecker)


def test_bounds_monitor_counts_give_ups():
    bus = TraceBus()
    mon = BoundsMonitor(bus)
    bus.emit(1.0, "transport.give_up", src="a", dst="b", msg_kind="X")
    assert mon.report()["give_ups"] == 1
    assert mon.ok  # give-ups alone are best-effort, not violations
