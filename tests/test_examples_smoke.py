"""Smoke test: every example script runs end-to-end (shortened).

Each ``examples/*.py`` honors ``REPRO_EXAMPLE_DURATION_MS``, so the
full demos (10–24 simulated seconds) shrink to a fast smoke run while
still exercising their whole pipeline — build, traffic, mobility or
faults, collectors, and the total-order assertions they all make.
This keeps example drift visible to tier-1 instead of rotting silently.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Short enough to be quick, long enough for every drill's faults,
#: handoffs, and warmups to actually happen.
SMOKE_DURATION_MS = "2500"


def test_examples_catalog():
    """The glob actually finds the examples (guards against moves)."""
    assert "quickstart.py" in EXAMPLES
    assert "sweep_demo.py" in EXAMPLES
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example: str, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_EXAMPLE_DURATION_MS"] = SMOKE_DURATION_MS
    env["REPRO_SWEEP_OUT"] = str(tmp_path / "sweep_demo.json")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        cwd=str(tmp_path),  # artifacts (if any) land in tmp, not the repo
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{example} failed\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
