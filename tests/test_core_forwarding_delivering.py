"""Tests for Message-Forwarding (§4.2.2) and Message-Delivering (§4.2.3)."""

from repro.core.config import ProtocolConfig
from repro.topology.tiers import Tier

from helpers import run_with_traffic, small_net


# ---------------------------------------------------------------------------
# Forwarding
# ---------------------------------------------------------------------------
def test_raw_forwarding_visits_every_top_node_once():
    sim, net, _ = run_with_traffic(n_br=4, rate=10, until=3_000,
                                   check_order=False)
    src = next(iter(net.sources.values()))
    sent = src.sent
    # Each message is forwarded along r-1 ring hops in total: the
    # corresponding node plus each intermediate node forwards once,
    # the last node (whose next is the corresponding node) does not.
    total_forwards = sum(ne.raw_forwarded for ne in net.top_ring_nes())
    assert total_forwards <= sent * 3
    assert total_forwards >= (sent - 5) * 3  # tail still in flight


def test_ordered_forwarding_in_ag_rings():
    sim, net, _ = run_with_traffic(ags_per_br=3, until=3_000,
                                   check_order=False)
    ag_nes = [ne for nid, ne in net.nes.items()
              if net.hierarchy.tier_of.get(nid) is Tier.AG]
    assert any(ne.ordered_forwarded > 0 for ne in ag_nes)


def test_ring_forward_stops_before_leader():
    sim, net, _ = run_with_traffic(ags_per_br=3, until=3_000,
                                   check_order=False)
    h = net.hierarchy
    for rid, ring in h.rings.items():
        if rid == h.top_ring_id or ring.size < 2:
            continue
        # The node whose next is the leader must not forward.
        last = ring.prev_of(ring.leader)
        assert net.nes[last].ordered_forwarded == 0


def test_every_ne_mq_converges():
    sim, net, _ = run_with_traffic(rate=10, until=3_000, check_order=False)
    for s in net.sources.values():
        s.stop()
    sim.run(until=8_000)
    sent = sum(s.sent for s in net.sources.values())
    for node_id, ne in net.nes.items():
        assert ne.mq.rear == sent - 1, f"{node_id} saw only {ne.mq.rear + 1}"


# ---------------------------------------------------------------------------
# Delivering
# ---------------------------------------------------------------------------
def test_delivery_in_global_order_to_all_mhs():
    sim, net, checker = run_with_traffic(n_sources=2, until=4_000)
    for m in net.member_hosts():
        seqs = m.delivered_seqs()
        assert seqs == sorted(seqs)


def test_front_advances_and_prunes():
    cfg = ProtocolConfig(mq_retention=8)
    sim, net, _ = run_with_traffic(cfg=cfg, rate=20, until=4_000,
                                   check_order=False)
    for s in net.sources.values():
        s.stop()
    sim.run(until=9_000)
    for node_id, ne in net.nes.items():
        assert ne.mq.front == ne.mq.rear, f"{node_id} did not finish delivery"
        # Retention window respected after pruning.
        assert ne.mq.occupancy <= cfg.mq_retention + 1


def test_wt_tracks_children_progress():
    sim, net, _ = run_with_traffic(rate=10, until=3_000, check_order=False)
    for s in net.sources.values():
        s.stop()
    sim.run(until=8_000)
    sent = sum(s.sent for s in net.sources.values())
    for ne in net.top_ring_nes():
        m = ne.wt.min_delivered_across()
        assert m == sent - 1


def test_ap_without_members_does_not_accumulate():
    cfg = ProtocolConfig(mq_retention=4)
    sim, net = small_net(mhs_per_ap=0, cfg=cfg)
    src = net.add_source(rate_per_sec=30)
    net.start()
    src.start()
    sim.run(until=4_000)
    aps = [ne for nid, ne in net.nes.items()
           if net.hierarchy.tier_of.get(nid) is Tier.AP]
    for ap in aps:
        assert ap.mq.occupancy <= cfg.mq_retention + 1


def test_unregister_child_stops_delivery():
    sim, net = small_net()
    net.start()
    src = net.add_source(rate_per_sec=20)
    src.start()
    sim.run(until=1_000)
    mh = net.member_hosts()[0]
    count_at_leave = None
    ap = mh.ap
    mh.leave()
    sim.run(until=1_200)  # detach propagates
    count_at_leave = mh.delivered_count
    sim.run(until=4_000)
    assert mh.delivered_count <= count_at_leave + 2  # in-flight tail only
    assert not net.nes[ap].has_child(mh.guid)


def test_delivery_window_limits_inflight():
    cfg = ProtocolConfig(delivery_window=2)
    sim, net, checker = run_with_traffic(cfg=cfg, rate=30, until=4_000)
    assert checker.deliveries_checked > 0  # still correct, just slower


def test_lost_tombstone_advances_delivery():
    sim, net = small_net()
    net.start()
    sim.run(until=100)
    ne = net.top_ring_nes()[0]
    # Manufacture an MQ with a tombstone in the middle.
    from repro.core.datastructures import BufferedMessage
    for seq in (0, 2):
        ne.mq.insert(BufferedMessage(global_seq=seq, source="s", local_seq=seq,
                                     ordering_node="br:0", payload=("s", seq)))
    ne.mq.tombstone_lost(1)
    ne.try_deliver()
    sim.run(until=2_000)
    # All children advanced past the tombstone.
    assert ne.wt.min_delivered_across() == 2
