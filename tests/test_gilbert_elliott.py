"""Property tests for the Gilbert–Elliott correlated-loss model.

The chain's closed-form properties (stationary distribution, geometric
burst lengths) are checked empirically over long seeded runs, and the
determinism contract — a fixed seed yields a fixed draw sequence no
matter how the transmissions are partitioned among senders — is checked
both on the bare model and through the fabric overlay.
"""

import pytest

from repro.faults.gilbert import GilbertElliott
from repro.sim.rand import RandomStreams

N_STEPS = 60_000


def _chain_run(p_gb, p_bg, loss_good, loss_bad, seed=7, n=N_STEPS):
    chain = GilbertElliott(p_gb, p_bg, loss_good, loss_bad)
    rng = RandomStreams(seed).get("ge-test")
    drops = []
    states = []
    for _ in range(n):
        states.append(chain.bad)
        drops.append(chain.step(rng))
    return drops, states


def test_parameter_validation():
    with pytest.raises(ValueError):
        GilbertElliott(0.0, 0.5)
    with pytest.raises(ValueError):
        GilbertElliott(0.5, 1.5)


@pytest.mark.parametrize("p_gb,p_bg,loss_bad", [
    (0.05, 0.25, 0.9),
    (0.02, 0.50, 1.0),
    (0.10, 0.20, 0.7),
])
def test_empirical_loss_rate_matches_stationary(p_gb, p_bg, loss_bad):
    drops, states = _chain_run(p_gb, p_bg, 0.0, loss_bad)
    chain = GilbertElliott(p_gb, p_bg, 0.0, loss_bad)
    expected = chain.stationary_loss
    rate = sum(drops) / len(drops)
    # 60k steps: the loss-rate estimator's std is well under 1% absolute
    # for these parameters; 15% relative tolerance is generous.
    assert rate == pytest.approx(expected, rel=0.15)
    bad_frac = sum(states) / len(states)
    assert bad_frac == pytest.approx(chain.stationary_bad, rel=0.15)


def test_burst_length_distribution_matches_transition_matrix():
    p_gb, p_bg = 0.05, 0.25
    _, states = _chain_run(p_gb, p_bg, 0.0, 1.0)
    # Collect bad-state sojourn lengths (complete bursts only).
    bursts = []
    run = 0
    for bad in states:
        if bad:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    assert len(bursts) > 500
    mean = sum(bursts) / len(bursts)
    assert mean == pytest.approx(1.0 / p_bg, rel=0.15)
    # Geometric tail: P(L > k) / P(L > k-1) ~ (1 - p_bg).
    for k in (1, 2, 3):
        longer = sum(1 for b in bursts if b > k)
        at_least = sum(1 for b in bursts if b > k - 1)
        assert longer / at_least == pytest.approx(1.0 - p_bg, abs=0.08)


def test_fixed_seed_fixed_draw_sequence():
    a, _ = _chain_run(0.05, 0.25, 0.0, 0.9, seed=3, n=2_000)
    b, _ = _chain_run(0.05, 0.25, 0.0, 0.9, seed=3, n=2_000)
    c, _ = _chain_run(0.05, 0.25, 0.0, 0.9, seed=4, n=2_000)
    assert a == b
    assert a != c


def test_draw_count_is_outcome_independent():
    """Every step consumes exactly two draws regardless of outcome."""
    class CountingRng:
        def __init__(self, values):
            self.values = list(values)
            self.calls = 0

        def random(self):
            self.calls += 1
            return self.values.pop(0)

    # Force very different outcomes; both consume 2 draws per step.
    for seq in ([0.0, 0.0, 0.0, 0.0], [0.99, 0.99, 0.99, 0.99]):
        chain = GilbertElliott(0.5, 0.5, 0.0, 1.0)
        rng = CountingRng(seq)
        chain.step(rng)
        chain.step(rng)
        assert rng.calls == 4


def test_partitioning_senders_cannot_change_draws():
    """Per-sender streams: sender A's sequence is invariant to whether
    B's transmissions are interleaved (the shard-decomposition claim,
    on the bare model exactly as the overlay keys it)."""
    def sequence_for(sender: str, interleave: bool, n=1_000):
        streams = RandomStreams(123)
        chains = {}
        out = []
        schedule = []
        for i in range(n):
            schedule.append(sender)
            if interleave:
                schedule.append("other")
        for who in schedule:
            chain = chains.get(who)
            if chain is None:
                chain = GilbertElliott(0.05, 0.25, 0.0, 0.9)
                chains[who] = chain
            drop = chain.step(streams.get(f"fault.ge.{who}"))
            if who == sender:
                out.append(drop)
        return out

    assert sequence_for("mh:0", False) == sequence_for("mh:0", True)
