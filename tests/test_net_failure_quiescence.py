"""Tests for the failure injector and Multiple-Token quiescence units."""

from repro.core.messages import TokenAnnounce, TokenPass
from repro.core.token import OrderingToken
from repro.net.failure import FailureInjector
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec

from conftest import Ping, Recorder
from helpers import small_net


# ---------------------------------------------------------------------------
# FailureInjector
# ---------------------------------------------------------------------------
def test_crash_and_recover_node(sim):
    fabric = Fabric(sim, default_spec=LinkSpec(latency=1.0))
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    inj = FailureInjector(fabric)
    inj.crash_node("b")
    a.send("b", Ping())
    sim.run(until=10)
    assert b.received == []
    inj.recover_node("b")
    a.send("b", Ping())
    sim.run(until=20)
    assert len(b.received) == 1
    assert [e[1] for e in inj.log] == ["crash", "recover"]


def test_link_down_up(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    inj = FailureInjector(fabric)
    inj.link_down("a", "b")
    a.send("b", Ping())
    sim.run(until=10)
    assert b.received == []
    inj.link_up("a", "b")
    a.send("b", Ping())
    sim.run(until=20)
    assert len(b.received) == 1


def test_partition_and_heal(sim):
    fabric = Fabric(sim)
    nodes = {n: Recorder(fabric, n) for n in ("a", "b", "c", "d")}
    for x, y in (("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")):
        fabric.connect(x, y, LinkSpec(latency=1.0))
    inj = FailureInjector(fabric)
    inj.partition(["a", "b"], ["c", "d"])
    # Intra-group link still up, cross links down.
    nodes["a"].send("b", Ping())
    nodes["a"].send("c", Ping())
    sim.run(until=10)
    assert len(nodes["b"].received) == 1
    assert nodes["c"].received == []
    inj.heal()
    nodes["a"].send("c", Ping())
    sim.run(until=20)
    assert len(nodes["c"].received) == 1


def test_scheduled_faults(sim):
    fabric = Fabric(sim, default_spec=LinkSpec(latency=1.0))
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    inj = FailureInjector(fabric)
    inj.crash_node_at(5.0, "b")
    inj.recover_node_at(10.0, "b")
    sim.run(until=20)
    assert b.alive
    assert [e[1] for e in inj.log] == ["crash", "recover"]


# ---------------------------------------------------------------------------
# Quiescence / Multiple-Token units
# ---------------------------------------------------------------------------
def test_quiescing_holder_passes_without_assigning():
    sim, net = small_net()
    src = net.add_source(corresponding="br:0", rate_per_sec=50)
    net.start()
    src.start()
    sim.run(until=500)
    ne = net.nes["br:0"]
    ordered_before = ne.new_token.next_global_seq
    # Enter quiescence on every top node.
    for top in net.top_ring_nes():
        top.quiesce_until = sim.now + 200.0
    sim.run(until=sim.now + 150.0)
    # The token kept circulating but minted nothing new.
    max_next = max(t.held_token.next_global_seq
                   for t in net.top_ring_nes() if t.held_token) if any(
        t.held_token for t in net.top_ring_nes()) else ordered_before
    assert max_next <= ordered_before + 1
    # After quiescence, ordering resumes.
    sim.run(until=sim.now + 2_000.0)
    assert any((t.new_token.next_global_seq if t.new_token else 0) >
               ordered_before + 10 for t in net.top_ring_nes())


def test_foreign_token_while_live_triggers_self_detection():
    sim, net = small_net(n_br=4)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=1_000)
    ne = net.nes["br:1"]
    assert not ne.quiescing
    # Inject a second (stale) token with a different identity.
    stale = OrderingToken(gid=net.cfg.gid, next_global_seq=1,
                          token_id=(99, "ghost"))
    ne.handle_token(TokenPass(stale))
    assert ne.quiescing  # self-detected the coexistence
    sim.run(until=sim.now + 3_000.0)
    # Resolution killed the lesser (stale) lineage.
    assert (99, "ghost") in ne.killed_token_ids


def test_announce_kills_lower_token():
    sim, net = small_net(n_br=3)
    net.start()
    sim.run(until=200)
    ne = net.nes["br:1"]
    ne.signal_multiple_token()  # opens a resolution round
    ne.handle_token_announce(TokenAnnounce(
        net.cfg.gid, "br:2", (1, "br:2"), next_global_seq=100, hops_left=3))
    ne.handle_token_announce(TokenAnnounce(
        net.cfg.gid, "br:0", (1, "br:0"), next_global_seq=5, hops_left=3))
    assert (1, "br:0") in ne.killed_token_ids
    assert (1, "br:2") not in ne.killed_token_ids
