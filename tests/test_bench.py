"""Unit tests for the repro.bench subsystem (ladder, measure, compare, CLI)."""

import json
import os

import pytest

from repro.bench import (LADDER, compare_reports, bench_report, measure_spec,
                         node_counts, rung_names, rung_spec, write_report)
from repro.bench.compare import ComparisonReport, Delta
from repro.bench.ladder import BASE_SCENARIO, LADDER_SEED, get_rung
from repro.bench.measure import BENCH_SCHEMA
from repro.experiments import registry


# ---------------------------------------------------------------------------
# Ladder definitions
# ---------------------------------------------------------------------------
def test_ladder_has_at_least_four_rungs_spanning_tens_to_thousands():
    assert len(LADDER) >= 4
    totals = [node_counts(rung_spec(r))["total"] for r in LADDER]
    assert totals == sorted(totals), "rungs must grow monotonically"
    assert totals[0] <= 50
    assert totals[-1] >= 2000


def test_ladder_rungs_are_pinned_and_seeded():
    for rung in LADDER:
        spec = rung_spec(rung)
        assert spec.seed == LADDER_SEED
        assert spec.warmup_ms == 0.0
        assert spec.duration_ms == rung.duration_ms
    assert BASE_SCENARIO in registry.names()


def test_get_rung_by_name_and_unknown():
    assert get_rung("xs") is LADDER[0]
    with pytest.raises(KeyError):
        get_rung("nope")


def test_get_rung_accepts_long_form_aliases():
    # `--rungs xs,small` must mean the same as `--rungs xs,s`.
    assert get_rung("small") is get_rung("s")
    assert get_rung("xsmall") is get_rung("xs")
    assert get_rung("medium") is get_rung("m")
    assert get_rung("large") is get_rung("l")
    assert get_rung("xlarge") is get_rung("xl")
    assert get_rung(" Small ") is get_rung("s")  # whitespace + case


def test_scale_rungs_are_opt_in_and_count_idle_population():
    from repro.bench.ladder import DEFAULT_RUNGS

    assert "xxl" not in DEFAULT_RUNGS and "metro" not in DEFAULT_RUNGS
    assert get_rung("million") is get_rung("metro")
    xxl = node_counts(rung_spec(get_rung("xxl")))
    assert xxl["mhs"] > 100_000  # declared = eager + idle catchment
    metro = node_counts(rung_spec(get_rung("metro")))
    assert metro["total"] > 1_000_000


def test_node_counts_depth1_formula():
    spec = registry.get("quickstart")  # n_br=3, ags=2, aps=2, mhs=2
    counts = node_counts(spec)
    assert counts == {"nes": 3 + 6 + 12, "mhs": 24, "total": 45}


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_result():
    spec = registry.get("quickstart", **{"duration_ms": 300.0,
                                         "warmup_ms": 0.0, "seed": 5})
    return measure_spec(spec, repeat=2)


def test_measure_spec_reports_engine_counters(tiny_result):
    r = tiny_result
    assert r.events > 0
    assert r.wall_s > 0
    assert r.events_per_sec == pytest.approx(r.events / r.wall_s)
    assert r.peak_heap > 0
    assert r.nodes == r.nes + r.mhs  # sources reported separately
    assert r.sources == 2
    assert len(r.wall_s_all) == 2
    assert r.wall_s == min(r.wall_s_all)  # best-of-N headline


def test_measured_population_agrees_with_ladder_formula(tiny_result):
    from repro.bench import node_counts

    counts = node_counts(registry.get("quickstart"))
    assert tiny_result.nodes == counts["total"]
    assert (tiny_result.nes, tiny_result.mhs) == (counts["nes"],
                                                  counts["mhs"])


def test_measure_spec_repeat_validates():
    with pytest.raises(ValueError):
        measure_spec(registry.get("quickstart"), repeat=0)


def test_peak_heap_recorded_without_any_compaction():
    """A run too small to ever compact still reports its true heap
    high-water mark — `compactions: 0, peak_heap: 0` can no longer be
    confused with "not measured"."""
    spec = registry.get("quickstart", **{
        "duration_ms": 200.0, "warmup_ms": 0.0, "seed": 5,
        "hierarchy.mhs_per_ap": 0,  # no join storm: no timer churn
        "workload.s": 1, "workload.rate_per_sec": 5.0,
    })
    r = measure_spec(spec, repeat=2)
    assert r.compactions == 0  # nothing this small triggers compaction
    assert r.peak_heap > 0
    d = r.to_dict()
    assert d["peak_heap"] == r.peak_heap
    assert d["compactions"] == 0
    assert d["shards"] == 1


def test_measure_spec_sharded_counters():
    spec = registry.get("quickstart", **{"duration_ms": 400.0,
                                         "warmup_ms": 0.0})
    r = measure_spec(spec, shards=2)
    assert r.shards == 2
    assert r.events > 0
    assert r.peak_heap > 0
    assert r.shard_stats is not None
    assert r.shard_stats["windows"] > 0
    assert "window_stalls" in r.shard_stats
    d = r.to_dict()
    assert d["shard"]["shards"] == 2


def test_measure_spec_sharded_rejects_check():
    with pytest.raises(ValueError):
        measure_spec(registry.get("quickstart"), shards=2, check=True)


def test_measure_spec_check_attaches_monitors():
    spec = registry.get("quickstart", **{"duration_ms": 300.0,
                                         "warmup_ms": 0.0, "seed": 5})
    r = measure_spec(spec, check=True)
    assert r.checked is True
    assert r.violations == []


def test_bench_report_shape(tiny_result):
    report = bench_report([tiny_result], kind="run", name="quickstart",
                          calibration=1_000_000.0)
    assert report["schema"] == BENCH_SCHEMA
    assert report["kind"] == "run"
    assert report["calibration_events_per_sec"] == 1_000_000.0
    entry = report["results"][0]
    assert entry["name"] == "quickstart"
    assert entry["events_per_sec"] > 0
    assert entry["events_per_sec_norm"] == pytest.approx(
        entry["events_per_sec"] / 1_000_000.0, rel=1e-3)
    json.dumps(report)  # must be JSON-serializable as-is


def test_calibrate_measures_null_engine_rate():
    from repro.bench import calibrate

    rate = calibrate(events=2_000)
    assert rate > 0


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------
def _report(rates, calibration=None):
    entries = []
    for n, r in rates.items():
        entry = {"name": n, "events_per_sec": r}
        if calibration:
            entry["events_per_sec_norm"] = r / calibration
        entries.append(entry)
    return {"schema": BENCH_SCHEMA, "kind": "ladder", "name": "ladder",
            "results": entries}


def test_compare_flags_regressions_beyond_threshold():
    cmp = compare_reports(_report({"xs": 79.0, "s": 100.0}),
                          _report({"xs": 100.0, "s": 95.0}),
                          threshold=0.20)
    assert not cmp.ok
    assert [d.name for d in cmp.regressions] == ["xs"]


def test_compare_tolerates_slowdown_within_threshold():
    cmp = compare_reports(_report({"xs": 81.0}), _report({"xs": 100.0}),
                          threshold=0.20)
    assert cmp.ok


def test_compare_prefers_normalized_metric_across_machines():
    """A 2x-slower host with the same per-event cost profile must pass:
    raw rate halves, but so does the calibration divisor."""
    fast = _report({"xs": 100_000.0}, calibration=1_000_000.0)
    slow = _report({"xs": 50_000.0}, calibration=500_000.0)
    cmp = compare_reports(slow, fast, threshold=0.20)
    assert cmp.metric == "events_per_sec_norm"
    assert cmp.ok
    # Raw fallback when either side lacks the normalized rate.
    cmp_raw = compare_reports(_report({"xs": 50_000.0}), fast,
                              threshold=0.20)
    assert cmp_raw.metric == "events_per_sec"
    assert not cmp_raw.ok


def test_compare_unmatched_entries_never_fail():
    cmp = compare_reports(_report({"xs": 10.0, "new": 1.0}),
                          _report({"xs": 10.0, "old": 500.0}))
    assert cmp.ok
    assert cmp.only_current == ["new"]
    assert cmp.only_baseline == ["old"]


def test_compare_rejects_bad_inputs():
    with pytest.raises(ValueError):
        compare_reports({"nope": 1}, _report({}))
    with pytest.raises(ValueError):
        compare_reports(_report({}), _report({}), threshold=1.5)


def test_delta_zero_baseline_is_infinite_improvement():
    d = Delta("x", current=10.0, baseline=0.0)
    assert d.ratio == float("inf")
    assert not d.regressed(0.2)


def test_compare_gates_peak_rss_growth():
    """Matched entries with peak_rss on both sides also gate memory:
    growth beyond mem_threshold fails, shrinkage never does."""
    mib = 1 << 20
    cur = _report({"xs": 100.0})
    base = _report({"xs": 100.0})
    cur["results"][0]["peak_rss"] = 160 * mib
    base["results"][0]["peak_rss"] = 100 * mib
    cmp = compare_reports(cur, base, mem_threshold=0.50)
    assert not cmp.ok
    (bad,) = cmp.regressions
    assert bad.metric == "peak_rss"
    assert "MiB" in bad.describe()
    # Within the memory threshold: fine.
    cur["results"][0]["peak_rss"] = 140 * mib
    assert compare_reports(cur, base, mem_threshold=0.50).ok
    # Shrinking memory is never a regression, whatever the threshold.
    cur["results"][0]["peak_rss"] = 10 * mib
    assert compare_reports(cur, base, mem_threshold=0.0).ok


def test_compare_old_baselines_without_rss_skip_memory_gate():
    mib = 1 << 20
    cur = _report({"xs": 100.0})
    cur["results"][0]["peak_rss"] = 500 * mib
    base = _report({"xs": 100.0})  # pre-RSS baseline: no peak_rss key
    cmp = compare_reports(cur, base, mem_threshold=0.0)
    assert cmp.ok
    assert all(d.metric != "peak_rss" for d in cmp.deltas)
    # ...and the skip is reported, not silent.
    assert cmp.mem_skipped == ["xs"]
    assert cmp.to_dict()["mem_skipped"] == ["xs"]


def test_compare_prints_memory_gate_skip(capsys):
    from repro.bench.__main__ import _print_comparison

    mib = 1 << 20
    cur = _report({"xs": 100.0})
    cur["results"][0]["peak_rss"] = 500 * mib
    base = _report({"xs": 100.0})
    cmp = compare_reports(cur, base)
    status = _print_comparison(cmp, 0.2, "cur.json", "base.json")
    out = capsys.readouterr().out
    assert status == 0
    assert "xs: memory gate skipped (old baseline)" in out


def test_comparison_report_to_dict_round_trips():
    cmp = ComparisonReport(threshold=0.2,
                           deltas=[Delta("xs", 75.0, 100.0)])
    data = cmp.to_dict()
    assert data["ok"] is False
    assert data["deltas"][0]["regressed"] is True
    json.dumps(data)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_run_writes_bench_json(tmp_path, capsys):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_quickstart.json"
    rc = main(["run", "quickstart", "--duration", "300",
               "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == BENCH_SCHEMA
    assert report["results"][0]["events_per_sec"] > 0


def test_cli_ladder_smallest_rung_and_baseline_cycle(tmp_path):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_ladder.json"
    assert main(["ladder", "--rungs", "xs", "--out", str(out)]) == 0
    # Second run against the first as baseline: same machine, same
    # workload, must be within any sane threshold.
    out2 = tmp_path / "BENCH_ladder2.json"
    assert main(["ladder", "--rungs", "xs", "--out", str(out2),
                 "--baseline", str(out), "--threshold", "0.9"]) == 0
    # And the standalone compare agrees.
    assert main(["compare", str(out2), str(out),
                 "--threshold", "0.9"]) == 0


def test_cli_compare_detects_regression(tmp_path):
    from repro.bench.__main__ import main

    cur, base = tmp_path / "cur.json", tmp_path / "base.json"
    write_report(str(cur), _report({"xs": 50.0}))
    write_report(str(base), _report({"xs": 100.0}))
    assert main(["compare", str(cur), str(base)]) == 1
    assert main(["compare", str(base), str(cur)]) == 0


def test_cli_unknown_scenario_is_usage_error(tmp_path):
    from repro.bench.__main__ import main

    assert main(["run", "no_such_scenario",
                 "--out", str(tmp_path / "x.json")]) == 2
