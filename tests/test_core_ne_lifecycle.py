"""Tests for NE lifecycle, view updates, and message/size plumbing."""

from repro.core.messages import (
    DeliverDown,
    GapRequest,
    HandoffRegister,
    RingOrdered,
    RingRaw,
    SourceData,
    TokenPass,
    WirelessDeliver,
)
from repro.core.token import OrderingToken
from repro.net.message import DEFAULT_SIZE_BITS

from helpers import run_with_traffic, small_net


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
def test_start_arms_timers_only_once():
    sim, net = small_net()
    ne = net.nes["br:0"]
    ne.start()
    ne.start()
    assert ne._maint_timer.running
    assert ne._tau_timer.running  # top-ring node runs Order-Assignment


def test_non_top_nodes_skip_tau_timer():
    sim, net = small_net()
    net.start()
    ag = net.nes["ag:0.0"]
    assert ag._maint_timer.running
    assert not ag._tau_timer.running


def test_stop_disarms_timers():
    sim, net = small_net()
    net.start()
    ne = net.nes["br:0"]
    ne.stop()
    assert not ne._tau_timer.running
    assert not ne._maint_timer.running


def test_update_view_promotion_to_top_ring_starts_tau():
    sim, net = small_net()
    net.start()
    ag = net.nes["ag:0.0"]
    assert not ag._tau_timer.running
    # Simulate a promotion into the top (ordering) ring.
    from repro.topology.hierarchy import NeighborView
    from repro.topology.tiers import Tier
    view = NeighborView(current="ag:0.0", tier=Tier.BR, ring_id="ring:br",
                        leader="br:0", previous="br:2", next="br:0")
    ag.update_view(view, ring_size_hint=4)
    assert ag._tau_timer.running


def test_crashed_ne_ignores_messages():
    sim, net = small_net()
    net.start()
    src = net.add_source(rate_per_sec=20)
    src.start()
    sim.run(until=500)
    ap = net.nes["ap:0.0.0"]
    ap.crash()
    rx_before = ap.rx_count
    sim.run(until=1_500)
    assert ap.rx_count == rx_before


def test_buffer_report_contents():
    sim, net, _ = run_with_traffic(until=1_000, check_order=False)
    rep = net.nes["br:0"].buffer_report()
    assert rep["node"] == "br:0"
    assert rep["mq_rear"] >= rep["mq_front"] - 1


# ---------------------------------------------------------------------------
# Message classes
# ---------------------------------------------------------------------------
def test_message_kinds():
    token = OrderingToken(gid="g")
    assert TokenPass(token).kind == "TokenPass"
    assert SourceData("g", "s", 0, None, 0.0).kind == "SourceData"
    assert GapRequest("g", 1, 2).kind == "GapRequest"


def test_control_messages_are_small():
    token = OrderingToken(gid="g")
    assert TokenPass(token).size_bits < DEFAULT_SIZE_BITS
    assert GapRequest("g", 0, 1).size_bits < DEFAULT_SIZE_BITS
    assert HandoffRegister("g", "mh:0", 5).size_bits < DEFAULT_SIZE_BITS


def test_deliver_down_is_ring_ordered_subtype():
    msg = DeliverDown("g", 1, "br:0", "s", 1, None, 0.0)
    assert isinstance(msg, RingOrdered)
    wmsg = WirelessDeliver("g", 1, "br:0", "s", 1, None, 0.0)
    assert isinstance(wmsg, RingOrdered)


def test_ring_raw_carries_ordering_node():
    msg = RingRaw("g", "br:1", "src:0", 7, ("p",), 3.0)
    assert msg.ordering_node == "br:1"
    assert msg.local_seq == 7
    assert msg.created_at == 3.0


# ---------------------------------------------------------------------------
# Determinism at the protocol level
# ---------------------------------------------------------------------------
def test_full_protocol_run_is_reproducible():
    def transcript(seed):
        sim, net, _ = run_with_traffic(seed=seed, n_sources=2, rate=25,
                                       until=3_000, check_order=False)
        out = []
        for m in net.member_hosts():
            out.append((m.guid, tuple(m.delivered_seqs())))
        return sorted(out)

    assert transcript(77) == transcript(77)


def test_trace_counts_match_between_identical_runs():
    def counts(seed):
        sim, net, _ = run_with_traffic(seed=seed, until=2_000,
                                       check_order=False)
        return dict(sim.trace.counts)

    assert counts(5) == counts(5)
