"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.fabric import Fabric
from repro.net.link import LinkSpec
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def fabric(sim: Simulator) -> Fabric:
    """A fabric with a permissive default link (tests may override)."""
    return Fabric(sim, default_spec=LinkSpec(latency=1.0))


class Ping(Message):
    """Tiny payload message for transport-level tests."""

    __slots__ = ("n",)

    def __init__(self, n: int = 0):
        self.n = n


class Recorder(NetNode):
    """A node that records every raw message it receives."""

    def __init__(self, fabric: Fabric, node_id: str):
        super().__init__(fabric, node_id)
        self.received: list[Message] = []

    def on_message(self, msg: Message) -> None:
        self.received.append(msg)


class ReliableRecorder(NetNode):
    """A node with a reliable channel that records accepted payloads."""

    def __init__(self, fabric: Fabric, node_id: str, rto: float = 10.0,
                 max_retries: int = 5):
        super().__init__(fabric, node_id)
        self.gave_up: list = []
        self.acked: list = []
        self.chan = ReliableChannel(
            self, rto=rto, max_retries=max_retries,
            on_give_up=lambda dst, p: self.gave_up.append((dst, p)),
            on_ack=lambda dst, p: self.acked.append((dst, p)),
        )
        self.payloads: list[Message] = []

    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is not None:
            self.payloads.append(payload)
