"""Baseline conformance under churn + access-point failure.

Every comparator runs the same regime — join/leave churn plus a
mid-run serving-node failure — through the total-order checker and the
applicable validation monitors, and each test asserts which invariants
that baseline is *expected* to violate.  This documents the paper's
comparison claims as executable facts:

==============  =====================================================
unordered       violates **agreement** and **monotonicity**: per-source
                sequence numbers collide across sources, so there is no
                total order at all (Remark 3's trade-off).
single_ring     violates **nothing**: it composes the full RingNet
                ordering/recovery stack over one big ring — same
                guarantees, worse scaling (the E6 comparison is about
                cost, not correctness).
hostview        violates **no order invariant** with its single sender
                (per-sender seq is trivially total); its documented
                weakness is buffer growth and handoff service breaks,
                not ordering.
relm            violates **monotonicity** and **gap accounting**: SH
                catch-up replays windows out of order after handoffs
                and drops ranges on failure, with no endpoint
                resequencing.
sequencer       violates **monotonicity** and **gap accounting** on a
                lossy access hop: order is assigned centrally but MHs
                deliver on arrival, so a retransmitted segment arriving
                late reorders the application stream — ordering needs
                endpoint resequencing, not just assignment (what
                RingNet's MQ provides).
==============  =====================================================
"""

import pytest

from repro.baselines.hostview import HostViewProtocol
from repro.baselines.relm import RelMProtocol
from repro.baselines.sequencer import SequencerMulticast
from repro.baselines.single_ring import SingleRingMulticast
from repro.baselines.unordered import UnorderedRingNet
from repro.metrics.order_checker import OrderChecker
from repro.net.failure import FailureInjector
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec
from repro.topology.tiers import Tier
from repro.validation.monitor import MonitorSuite
from repro.validation.monitors import (MembershipMonitor, QuiescenceMonitor,
                                       TokenMonitor)
from repro.workloads.churn import ChurnDriver

SEED = 11
DURATION = 4_000.0
CRASH_AT = 1_500.0
CHURN_MS = 400.0


def _kinds(checker):
    """Violation-kind histogram, e.g. {'agreement': 10, 'gap': 3}."""
    out = {}
    for v in checker.violations:
        out[v.split(":")[0]] = out.get(v.split(":")[0], 0) + 1
    return out


def _finish(suite, net, sim):
    suite.finish(net=net, end_time=sim.now)
    suite.detach()


# ---------------------------------------------------------------------------
# unordered: no total order, by design
# ---------------------------------------------------------------------------
def test_unordered_violates_agreement_and_monotonicity():
    sim = Simulator(seed=SEED)
    checker = OrderChecker(sim.trace)
    suite = MonitorSuite([MembershipMonitor(),
                          QuiescenceMonitor()]).attach(sim.trace)
    net = UnorderedRingNet.build(
        sim, HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1))
    sources = [net.add_source(rate_per_sec=15) for _ in range(2)]
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    churn = ChurnDriver(net, aps, mean_interval_ms=CHURN_MS)
    for s in sources:
        s.start()
    churn.start()
    sim.schedule_at(CRASH_AT, FailureInjector(net.fabric).crash_node,
                    "ap:0.0.0")
    sim.run(until=DURATION)
    _finish(suite, net, sim)

    kinds = _kinds(checker)
    # Two sources' per-source sequences collide: no agreement, and the
    # interleaving breaks per-receiver monotonicity.
    assert kinds.get("agreement", 0) > 0
    assert kinds.get("monotonicity", 0) > 0
    # Membership bookkeeping itself stays consistent.
    assert suite.all_violations() == []


# ---------------------------------------------------------------------------
# single_ring: full correctness, different (worse-scaling) topology
# ---------------------------------------------------------------------------
def test_single_ring_violates_nothing_under_churn_and_crash():
    sim = Simulator(seed=SEED)
    checker = OrderChecker(sim.trace)
    suite = MonitorSuite([TokenMonitor(), MembershipMonitor(),
                          QuiescenceMonitor()]).attach(sim.trace)
    net = SingleRingMulticast.build_ring(sim, n_bs=6, mhs_per_bs=1)
    sources = [net.add_source(rate_per_sec=15) for _ in range(2)]
    churn = ChurnDriver(net, net.base_stations, mean_interval_ms=CHURN_MS)
    net.start()
    for s in sources:
        s.start()
    churn.start()
    sim.schedule_at(CRASH_AT, net.crash_ne, "bs:3")
    sim.run(until=DURATION)
    _finish(suite, net, sim)

    checker.assert_ok()
    assert suite.all_violations() == []
    assert suite.get("token").holds > 0  # the ring kept rotating


# ---------------------------------------------------------------------------
# hostview: single-sender order holds; weaknesses are elsewhere
# ---------------------------------------------------------------------------
def test_hostview_order_holds_with_single_sender():
    sim = Simulator(seed=SEED)
    checker = OrderChecker(sim.trace, check_validity=False)
    suite = MonitorSuite([MembershipMonitor(),
                          QuiescenceMonitor()]).attach(sim.trace)
    hv = HostViewProtocol(sim, n_mss=4, rate_per_sec=20)
    msss = [f"mss:{i}" for i in range(4)]
    for i, mss in enumerate(msss):
        hv.add_mobile_host(f"mh:{i}", mss)
    churn = ChurnDriver(hv, msss, mean_interval_ms=CHURN_MS)
    hv.sender.start()
    churn.start()
    sim.schedule_at(CRASH_AT, FailureInjector(hv.fabric).crash_node, "mss:1")
    sim.run(until=DURATION)
    _finish(suite, hv, sim)

    checker.assert_ok()
    assert suite.all_violations() == []


# ---------------------------------------------------------------------------
# relm: catch-up replay reorders; failures drop ranges silently
# ---------------------------------------------------------------------------
def test_relm_violates_monotonicity_and_gap_accounting():
    sim = Simulator(seed=SEED)
    checker = OrderChecker(sim.trace, check_validity=False)
    suite = MonitorSuite([MembershipMonitor(),
                          QuiescenceMonitor()]).attach(sim.trace)
    relm = RelMProtocol(sim, n_regions=2, msss_per_region=2, rate_per_sec=20)
    msss = list(relm.msss)
    for i, mss in enumerate(msss):
        relm.add_mobile_host(f"mh:{i}", mss)
    churn = ChurnDriver(relm, msss, mean_interval_ms=CHURN_MS)
    relm.source.start()
    churn.start()

    def cross_region_handoff():
        members = relm.member_hosts()
        if members:
            relm.handoff(members[0].guid, msss[-1])

    sim.schedule_at(1_200.0, cross_region_handoff)
    sim.schedule_at(CRASH_AT, FailureInjector(relm.fabric).crash_node,
                    msss[1])
    sim.run(until=DURATION)
    _finish(suite, relm, sim)

    kinds = _kinds(checker)
    assert kinds.get("monotonicity", 0) > 0   # SH window replayed late
    assert kinds.get("gap", 0) > 0            # dropped ranges, no tombstones
    assert kinds.get("agreement", 0) == 0     # single source: ids unique


# ---------------------------------------------------------------------------
# sequencer: central assignment without endpoint resequencing
# ---------------------------------------------------------------------------
def test_sequencer_assignment_alone_breaks_on_lossy_access_links():
    sim = Simulator(seed=SEED)
    checker = OrderChecker(sim.trace, check_validity=False)
    suite = MonitorSuite([MembershipMonitor(),
                          QuiescenceMonitor()]).attach(sim.trace)
    seqm = SequencerMulticast(sim, n_aps=4)
    aps = [f"ap:{i}" for i in range(4)]
    for i, ap in enumerate(aps):
        seqm.add_mobile_host(f"mh:{i}", ap)
    sources = [seqm.add_source(rate_per_sec=15) for _ in range(2)]
    churn = ChurnDriver(seqm, aps, mean_interval_ms=CHURN_MS)
    for s in sources:
        s.start()
    churn.start()
    sim.schedule_at(CRASH_AT, FailureInjector(seqm.fabric).crash_node,
                    "ap:1")
    sim.run(until=DURATION)
    _finish(suite, seqm, sim)

    kinds = _kinds(checker)
    # Global sequence numbers are unique (the sequencer is consistent) …
    assert kinds.get("agreement", 0) == 0
    # … but on a 2%-loss access hop, deliver-on-arrival reorders and
    # silently skips: ordering needs endpoint resequencing too.
    assert kinds.get("monotonicity", 0) > 0
    assert kinds.get("gap", 0) > 0
    assert suite.all_violations() == []


# ---------------------------------------------------------------------------
# The comparison in one table: RingNet itself passes the same regime
# ---------------------------------------------------------------------------
def test_ringnet_same_regime_is_clean():
    from repro.experiments.spec import (ChurnSpec, ExperimentSpec,
                                        FailureEvent, HierarchyShape,
                                        WorkloadSpec)
    from repro.validation.suite import check_spec

    spec = ExperimentSpec(
        name="baseline-regime",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        churn=ChurnSpec(enabled=True, mean_interval_ms=CHURN_MS),
        failures=[FailureEvent(at_ms=CRASH_AT, kind="crash",
                               target="ap:0.0.0")],
        duration_ms=DURATION, warmup_ms=0.0, seed=SEED,
    )
    result = check_spec(spec)
    assert result.violations == []
    assert result.deliveries > 0
