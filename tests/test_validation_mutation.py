"""Mutation smoke tests: deliberately break invariants, expect alarms.

A conformance harness that never fires is indistinguishable from one
that checks nothing.  These tests break each invariant on purpose —
through the test-only token-drop hook in the real protocol, through
direct state tampering, and through adversarial crafted traces — and
assert the corresponding monitor reports at least one violation.
"""

from repro.core.messages import TokenPass
from repro.sim.trace import TraceBus, TraceRecord
from repro.validation.monitor import MonitorSuite
from repro.validation.monitors import (BoundsMonitor, QuiescenceMonitor,
                                       TokenMonitor)
from repro.validation.suite import standard_suite

from helpers import small_net


# ---------------------------------------------------------------------------
# Real-protocol mutation: skip a token pass (the hook in OrderingMixin)
# ---------------------------------------------------------------------------
def test_dropped_token_pass_trips_liveness_monitor():
    sim, net = small_net(seed=3)
    token_mon = TokenMonitor().attach(sim.trace)
    quiesce_mon = QuiescenceMonitor().attach(sim.trace)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()

    def sabotage():
        # Whoever passes next silently drops the token.  No topology
        # change accompanies it, so the membership layer never raises
        # Token-Loss and ordering halts for good.
        for ne in net.top_ring_nes():
            ne._test_drop_token_passes = 1

    sim.schedule_at(1_500.0, sabotage)
    sim.run(until=6_000.0)
    token_mon.finish(net=net, end_time=sim.now)
    quiesce_mon.finish(net=net, end_time=sim.now)
    token_mon.detach()
    quiesce_mon.detach()

    assert sim.trace.counts.get("test.token_dropped", 0) == 1
    assert any("liveness" in v for v in token_mon.violations)
    # Sanity: before the sabotage the same run was healthy.
    assert token_mon.holds > 0


def test_healthy_run_with_hook_unarmed_stays_clean():
    sim, net = small_net(seed=3)
    token_mon = TokenMonitor().attach(sim.trace)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=4_000.0)
    token_mon.finish(net=net, end_time=sim.now)
    token_mon.detach()
    assert token_mon.ok


# ---------------------------------------------------------------------------
# Real-protocol mutation: regress a live token's NextGlobalSeqNo
# ---------------------------------------------------------------------------
def test_token_gseq_regression_trips_token_monitor():
    sim, net = small_net(seed=5)
    token_mon = TokenMonitor().attach(sim.trace)
    src = net.add_source(rate_per_sec=30)
    net.start()
    src.start()

    def tamper():
        holder = next((ne for ne in net.top_ring_nes()
                       if ne.held_token is not None), None)
        if holder is None:  # token in transit: try again shortly
            sim.schedule(1.0, tamper)
            return
        holder.held_token.next_global_seq = max(
            0, holder.held_token.next_global_seq - 10)

    sim.schedule_at(2_000.0, tamper)
    sim.run(until=4_000.0)
    token_mon.finish(net=net, end_time=sim.now)
    token_mon.detach()
    assert any("regressed" in v for v in token_mon.violations)


# ---------------------------------------------------------------------------
# State tampering: unbounded channel state
# ---------------------------------------------------------------------------
def test_inflated_channel_state_trips_bounds_monitor():
    sim, net = small_net(seed=3)
    mon = BoundsMonitor().attach(sim.trace)
    net.start()
    sim.run(until=500.0)
    ne = next(iter(net.nes.values()))
    ne.chan.peak_in_flight_by_dst["mh:ghost"] = 10 ** 6
    mon.finish(net=net, end_time=sim.now)
    mon.detach()
    assert any("exceeds limit" in v for v in mon.violations)


# ---------------------------------------------------------------------------
# Adversarial trace: every monitor in the standard suite can fire
# ---------------------------------------------------------------------------
def _adversarial_records():
    """A stream violating every monitored invariant at least once."""
    recs = [
        # Membership: delivery after leave.
        TraceRecord(0.0, "mh.join", {"mh": "mh:a", "ap": "ap:0"}),
        TraceRecord(1.0, "mh.member", {"mh": "mh:a", "base": -1}),
        TraceRecord(2.0, "mh.deliver", {"mh": "mh:a", "gseq": 0,
                                        "source": "s", "local_seq": 0}),
        TraceRecord(3.0, "mh.leave", {"mh": "mh:a", "ap": "ap:0"}),
        TraceRecord(4.0, "mh.deliver", {"mh": "mh:a", "gseq": 1,
                                        "source": "s", "local_seq": 1}),
        # Total order: the same gseq carries two different messages.
        TraceRecord(5.0, "mh.join", {"mh": "mh:b", "ap": "ap:1"}),
        TraceRecord(5.5, "mh.member", {"mh": "mh:b", "base": -1}),
        TraceRecord(6.0, "mh.deliver", {"mh": "mh:b", "gseq": 0,
                                        "source": "s2", "local_seq": 7}),
        # Token: a destroyed lineage circulates again.
        TraceRecord(7.0, "token.destroyed", {"node": "br:0",
                                             "token_id": (1, "br:0")}),
        TraceRecord(8.0, "token.hold", {"node": "br:1", "next_gseq": 0,
                                        "token_id": (1, "br:0")}),
        # Handoff: resume skips sequences with no tombstone.
        TraceRecord(9.0, "mh.handoff", {"mh": "mh:b", "old": "ap:1",
                                        "new": "ap:2", "front": 0}),
        TraceRecord(10.0, "mh.deliver", {"mh": "mh:b", "gseq": 5,
                                         "source": "s2", "local_seq": 9}),
        # Quiescence: a crash after which nothing ever resumes.
        TraceRecord(5_000.0, "fault.crash", {"node": "br:2"}),
        TraceRecord(20_000.0, "source.send", {"source": "src:0",
                                              "local_seq": 99}),
    ]
    return recs


def test_every_monitor_in_the_suite_has_teeth():
    suite = standard_suite("ringnet", liveness_window_ms=1_000.0,
                           recovery_window_ms=1_000.0)
    bus = TraceBus()
    suite.attach(bus)
    for rec in _adversarial_records():
        bus.emit(rec.time, rec.kind, **rec.attrs)

    # Bounds needs simulated network state: a tiny net with one channel
    # poked far past any configured ceiling.
    sim, net = small_net(seed=1)
    next(iter(net.nes.values())).chan.peak_in_flight_by_dst["x"] = 10 ** 6

    suite.finish(net=net, end_time=20_000.0)
    suite.detach()

    fired = {m.name for m in suite if not m.ok}
    assert fired == {"token", "handoff", "total_order", "membership",
                     "bounds", "quiescence"}
    # And each produced a diagnosable message.
    for m in suite:
        assert all(isinstance(v, str) and v for v in m.violations)


def test_validity_checker_flags_never_sent_message():
    from repro.metrics.order_checker import OrderChecker
    bus = TraceBus()
    checker = OrderChecker(bus, check_validity=True)
    bus.emit(0.0, "mh.join", mh="mh:a", ap="ap:0")
    bus.emit(1.0, "mh.member", mh="mh:a", base=-1)
    bus.emit(2.0, "mh.deliver", mh="mh:a", gseq=0, source="src:ghost",
             local_seq=0)
    assert any("never-sent" in v for v in checker.violations)
    checker.detach()
    assert bus.subscriber_count == 0


def test_monitor_suite_context_manager_detaches_after_mutation_run():
    bus = TraceBus()
    with MonitorSuite([TokenMonitor(), BoundsMonitor()]).attach(bus) as suite:
        bus.emit(0.0, "token.hold", node="br:0", next_gseq=3,
                 token_id=(0, "br:0"))
        bus.emit(1.0, "token.hold", node="br:1", next_gseq=1,
                 token_id=(0, "br:0"))
    assert bus.subscriber_count == 0
    assert not suite.get("token").ok
