"""Unit tests for protocol configuration validation."""

import pytest

from repro.core.config import ProtocolConfig


def test_defaults_valid():
    cfg = ProtocolConfig()
    assert cfg.tau > 0
    assert cfg.delivery_window >= 1
    assert cfg.gid


def test_frozen():
    cfg = ProtocolConfig()
    with pytest.raises(Exception):
        cfg.tau = 1.0  # type: ignore[misc]


@pytest.mark.parametrize("field,value", [
    ("tau", 0.0),
    ("tau", -1.0),
    ("token_hold_time", -0.1),
    ("delivery_window", 0),
    ("mq_retention", -1),
])
def test_invalid_values_rejected(field, value):
    with pytest.raises(ValueError):
        ProtocolConfig(**{field: value})


def test_custom_values_kept():
    cfg = ProtocolConfig(tau=2.0, token_hold_time=0.1, delivery_window=4,
                         mq_retention=10, gap_timeout=30.0)
    assert cfg.tau == 2.0
    assert cfg.delivery_window == 4
    assert cfg.gap_timeout == 30.0
