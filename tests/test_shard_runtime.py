"""Sharded execution: engine keys, window stepping, trace identity.

The exhaustive all-scenario identity matrix lives in
``test_trace_identity.py`` (the sharded re-record pass); these tests
cover the mechanisms it rests on plus targeted end-to-end runs for the
synchronization-probe paths (churn, token-holder crash).
"""

import pytest

from repro.experiments import registry
from repro.shard import record_sharded, run_sharded
from repro.shard.record import merge_streams
from repro.sim.engine import Simulator, mix_key
from repro.validation.record import first_divergence, record_spec


def short(name, duration, **extra):
    overrides = {"duration_ms": duration, "warmup_ms": 0.0}
    overrides.update(extra)
    return registry.get(name, **overrides)


# ----------------------------------------------------------------------
# Engine: causal keys and ownership contexts
# ----------------------------------------------------------------------
def test_causal_keys_are_decomposition_invariant():
    """An event's key depends only on its causal ancestry, not on what
    other events exist — the property sharding rests on."""
    def chain_keys(extra_noise):
        sim = Simulator(seed=0)
        keys = []

        def hop(depth):
            keys.append(sim._ctx_key)
            if depth:
                sim.schedule(1.0, hop, depth - 1)

        sim.schedule(1.0, hop, 3)
        if extra_noise:
            # Unrelated events; under the old global counter these
            # would have shifted every subsequent seq.
            for _ in range(50):
                sim.schedule(0.5, lambda: None)
        sim.run()
        return keys

    assert chain_keys(False) == chain_keys(True)


def test_mix_key_is_stable_and_nonzero():
    assert mix_key(0, 0) == mix_key(0, 0)
    assert mix_key(0, 0) != mix_key(0, 2)
    for salt in range(100):
        assert mix_key(12345, salt) >= 1


def test_gate_drops_foreign_events_but_keys_stay_aligned():
    def run(gated):
        sim = Simulator(seed=0)
        if gated:
            sim.gate = lambda owner: owner == "mine"
        fired = []
        keys = {}
        sim.schedule(1.0, lambda: fired.append("a"), owner="mine")
        keys["theirs"] = sim.schedule(1.0, lambda: fired.append("b"),
                                      owner="theirs")
        keys["mine2"] = sim.schedule(2.0, lambda: fired.append("c"),
                                     owner="mine")
        sim.run()
        return fired, keys

    fired_all, keys_all = run(gated=False)
    fired_gated, keys_gated = run(gated=True)
    assert sorted(fired_all) == ["a", "b", "c"]
    assert fired_gated == [f for f in fired_all if f != "b"]
    # The foreign event came back dead, and key alignment held.
    assert keys_gated["theirs"].cancelled
    assert not keys_gated["theirs"].in_heap
    assert keys_gated["mine2"].key == keys_all["mine2"].key


def test_call_owned_skips_foreign_sections_and_stays_aligned():
    def run(local_owner):
        sim = Simulator(seed=0)
        sim.gate = lambda owner: owner == local_owner
        ran = []
        sim.call_owned("x", ran.append, "x-section")
        sim.call_owned("y", ran.append, "y-section")
        after = sim.schedule(1.0, lambda: None, owner=local_owner)
        return ran, after.key

    ran_x, key_x = run("x")
    ran_y, key_y = run("y")
    assert ran_x == ["x-section"]
    assert ran_y == ["y-section"]
    # Both shards minted the same key for the event after the sections.
    assert key_x == key_y


def test_run_window_is_exclusive_and_inclusive_tail():
    sim = Simulator(seed=0)
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    sim.schedule(3.0, fired.append, 3)
    assert sim.run_window(2.0) == 1          # strictly below t=2
    assert fired == [1]
    assert sim.run_window(3.0) == 1          # [2, 3): picks up t=2
    assert fired == [1, 2]
    assert sim.run_window(3.0, inclusive=True) == 1   # the horizon tail
    assert fired == [1, 2, 3]


def test_run_window_stops_exactly_before_a_key():
    sim = Simulator(seed=0)
    fired = []
    evs = [sim.schedule(1.0, fired.append, i) for i in range(5)]
    order = sorted(evs, key=lambda e: e.key)
    stop = order[2]
    sim.run_window(1.0, stop.key)
    assert fired == [evs.index(order[0]), evs.index(order[1])]
    assert sim.peek_entry() == (1.0, stop.key)


# ----------------------------------------------------------------------
# K=1 is the exact sequential path
# ----------------------------------------------------------------------
def test_one_shard_is_exactly_sequential():
    spec = short("quickstart", 600.0)
    seq = record_spec(spec)
    lines = record_sharded(spec, 1)
    assert first_divergence(seq.lines, lines) is None


# ----------------------------------------------------------------------
# End-to-end identity on the probe paths
# ----------------------------------------------------------------------
def test_churn_probe_path_byte_identical():
    spec = short("churn_heavy", 1500.0)
    seq = record_spec(spec)
    result = run_sharded(spec, 2, record=True)
    assert result.probe_syncs > 0, "churn run must exercise probes"
    div = first_divergence(seq.lines, result.merged_lines)
    assert div is None, div.describe() if div else None


def test_token_holder_probe_path_byte_identical():
    spec = short("failure_drill", 3500.0)
    seq = record_spec(spec)
    result = run_sharded(spec, 2, record=True)
    assert result.probe_syncs >= 1  # the crash_token_holder at 3000ms
    div = first_divergence(seq.lines, result.merged_lines)
    assert div is None, div.describe() if div else None


def test_mobility_migrations_are_observed():
    spec = short("handoff_storm", 2000.0)
    result = run_sharded(spec, 2, record=True)
    # The corridor walk crosses the BR boundary: cross-shard handoffs
    # must be detected, counted, and logged at window boundaries.
    assert result.migrations > 0
    assert len(result.migration_log) == result.migrations
    seq = record_spec(spec)
    assert first_divergence(seq.lines, result.merged_lines) is None


# ----------------------------------------------------------------------
# Runtime statistics and results
# ----------------------------------------------------------------------
def test_shard_result_statistics_are_consistent():
    spec = short("quickstart", 800.0)
    seq = record_spec(spec)
    result = run_sharded(spec, 2, record=True)
    assert result.n_shards == 2
    assert len(result.shard_events) == 2
    assert result.events == sum(result.shard_events)
    assert result.exported > 0
    assert result.windows > 0
    assert result.lookahead == 2.0  # the WIRED cut latency
    assert result.peak_heap > 0
    stats = result.stats_dict()
    assert stats["window_stalls"] == sum(result.stalled_windows)
    assert stats["events_per_sec"] >= 0
    # Per-kind trace counts aggregate to the sequential run's counts.
    assert sum(result.trace_counts.values()) == len(seq.lines)


def test_merge_streams_orders_by_key():
    streams = [
        [((1.0, 5, 0), "b"), ((2.0, 1, 0), "d")],
        [((1.0, 2, 0), "a"), ((1.0, 7, 0), "c")],
    ]
    assert merge_streams(streams) == ["a", "b", "c", "d"]


def test_bad_shard_count():
    with pytest.raises(ValueError):
        run_sharded(short("quickstart", 100.0), 0)


# ----------------------------------------------------------------------
# Stall attribution and load-aware rebalancing
# ----------------------------------------------------------------------
def test_stall_causes_partition_the_stall_count():
    """Every empty window is attributed to exactly one cause, and the
    probe cause appears where replicated probe rounds park a shard short
    of its grant (the churn_heavy stall regression)."""
    spec = short("churn_heavy", 1500.0)
    result = run_sharded(spec, 2, record=True)
    assert result.probe_syncs > 0
    assert len(result.stall_causes) == 2
    for i, causes in enumerate(result.stall_causes):
        assert set(causes) <= {"lookahead", "probe", "idle"}
        assert sum(causes.values()) == result.stalled_windows[i]
    all_causes = set()
    for causes in result.stall_causes:
        all_causes.update(k for k, v in causes.items() if v > 0)
    assert "probe" in all_causes, (
        "probe-parked windows must be attributed to the probe cause, "
        f"not folded into {sorted(all_causes)}")


def test_rebalancer_moves_ownership_and_keeps_identity():
    spec = short("handoff_storm", 2000.0)
    seq = record_spec(spec)
    result = run_sharded(spec, 2, record=True)
    # The corridor walk drives MHs across the BR cut: the load-aware
    # rebalancer (on by default) must fire and actually move ownership.
    assert result.rebalances > 0
    assert result.rebalance_moves >= result.rebalances
    assert first_divergence(seq.lines, result.merged_lines) is None
    # The decision log is (time, n_moves) at replicated barriers:
    # strictly increasing, inside the horizon, spaced >= min_interval.
    times = [t for t, _ in result.rebalance_log]
    assert all(0.0 < t < spec.duration_ms for t in times)
    assert times == sorted(times)
    from repro.shard.partition import LoadAwareRebalancer
    min_interval = LoadAwareRebalancer().min_interval
    assert all(b - a >= min_interval for a, b in zip(times, times[1:]))
    assert sum(n for _, n in result.rebalance_log) == result.rebalance_moves


def test_rebalancer_none_disables_moves():
    spec = short("handoff_storm", 2000.0)
    result = run_sharded(spec, 2, record=True, rebalancer="none")
    assert result.rebalances == 0
    assert result.rebalance_log == []
    seq = record_spec(spec)
    assert first_divergence(seq.lines, result.merged_lines) is None


def test_stats_dict_reports_adaptive_runtime_fields():
    spec = short("handoff_storm", 2000.0)
    result = run_sharded(spec, 2)
    stats = result.stats_dict()
    assert stats["rebalances"] == result.rebalances
    assert stats["rebalance_moves"] == result.rebalance_moves
    assert stats["rebalance_log"] == [list(e) for e in result.rebalance_log]
    matrix = stats["lookahead_matrix_ms"]
    assert len(matrix) == 2 and all(len(row) == 2 for row in matrix)
    assert matrix[0][0] == 0.0 and matrix[0][1] > 0.0
    assert stats["windows_per_shard"] and len(stats["shard_wall_s"]) == 2
    assert stats["stall_causes"] == list(result.stall_causes)
