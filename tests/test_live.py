"""Tests for the live asyncio backend (`repro.live`).

Covers the wall-clock runtime's seam semantics (frozen clock, absolute
timer grid, seed parity with the sim engine), both fabrics, the
spec-driven builder, and the sim-vs-live differential harness — whose
report shape is pinned by the committed schema fixture.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.experiments import registry
from repro.live.builder import NetworkBuilder
from repro.live.diff import (DEFAULT_TOLERANCES, diff_spec, order_agreement,
                             _count_inversions, validate_report)
from repro.live.runtime import LiveRuntime
from repro.runtime.timers import PeriodicTimer
from repro.sim.engine import Simulator

FAST = 0.02  # wall seconds per logical second: 50x faster than real time

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "live_diff_report.schema.json")


def short_quickstart(duration_ms: float = 1200.0):
    return registry.get("quickstart", duration_ms=duration_ms,
                        warmup_ms=200.0)


# ----------------------------------------------------------------------
# LiveRuntime seam semantics
# ----------------------------------------------------------------------
class TestLiveRuntime:
    def test_time_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveRuntime(time_scale=0.0)
        with pytest.raises(ValueError):
            LiveRuntime(time_scale=-1.0)

    def test_negative_delay_rejected(self):
        rt = LiveRuntime(time_scale=FAST)
        with pytest.raises(ValueError):
            rt.schedule(-1.0, lambda: None)

    def test_frozen_clock_inside_callback(self):
        # At an extreme time scale the loop is always behind the wall
        # clock; the callback must still see its scheduled deadline.
        rt = LiveRuntime(time_scale=0.0001)
        seen = []
        rt.schedule(5.0, lambda: seen.append(rt.now))
        rt.schedule(9.0, lambda: seen.append(rt.now))
        rt.run(until=10.0)
        assert seen == [5.0, 9.0]
        assert rt.now == 10.0  # clock ends at the horizon

    def test_periodic_timer_on_absolute_grid(self):
        rt = LiveRuntime(time_scale=0.0001)
        fires = []
        timer = PeriodicTimer(rt, period=7.0,
                              fn=lambda: fires.append(rt.now), phase=3.0)
        timer.start()
        rt.run(until=31.0)
        # phase + k*period, regardless of how late each tick really ran.
        assert fires == [10.0, 17.0, 24.0, 31.0]

    def test_cancel_and_pending(self):
        rt = LiveRuntime(time_scale=FAST)
        fired = []
        keep = rt.schedule(1.0, lambda: fired.append("keep"))
        drop = rt.schedule(1.0, lambda: fired.append("drop"))
        assert rt.pending == 2
        rt.cancel(drop)
        assert rt.pending == 1
        rt.run(until=2.0)
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_owner_inheritance_matches_sim(self):
        # Same contract the sim engine implements: scheduled callbacks
        # inherit the scheduling context's owner unless overridden.
        rt = LiveRuntime(time_scale=0.0001)
        owners = []

        def inner():
            owners.append(rt.current_owner)
            rt.schedule(1.0, lambda: owners.append(rt.current_owner))
            rt.schedule(1.0, lambda: owners.append(rt.current_owner),
                        owner="other")

        rt.call_owned("alice", lambda: rt.schedule(1.0, inner))
        rt.run(until=5.0)
        assert owners == ["alice", "alice", "other"]

    def test_rng_streams_match_sim_engine(self):
        # Identical named-stream derivation is what makes the
        # differential harness meaningful: same seed, same draws.
        rt = LiveRuntime(seed=42, time_scale=FAST)
        sim = Simulator(seed=42)
        for name in ("traffic", "mobility", "loss"):
            live_draws = [rt.rng(name).random() for _ in range(5)]
            sim_draws = [sim.rng(name).random() for _ in range(5)]
            assert live_draws == sim_draws

    def test_until_none_drains_heap(self):
        rt = LiveRuntime(time_scale=FAST)
        fired = []
        rt.schedule(1.0, lambda: fired.append(1))
        rt.schedule(3.0, lambda: fired.append(3))
        rt.run()  # no horizon: exit when the heap drains
        assert fired == [1, 3]

    def test_stop_halts_the_loop(self):
        rt = LiveRuntime(time_scale=0.0001)
        fired = []

        def first():
            fired.append(1)
            rt.stop()

        rt.schedule(1.0, first)
        rt.schedule(2.0, lambda: fired.append(2))
        rt.run(until=10.0)
        assert fired == [1]

    def test_lag_report_shape(self):
        rt = LiveRuntime(time_scale=0.0001)
        rt.schedule(1.0, lambda: None)
        rt.run(until=2.0)
        rep = rt.lag_report()
        assert rep["events"] == 1
        assert rep["time_scale"] == 0.0001
        assert rep["max_lag_ms"] >= 0.0
        assert rep["mean_lag_ms"] >= 0.0


# ----------------------------------------------------------------------
# Builder validation
# ----------------------------------------------------------------------
class TestNetworkBuilder:
    def test_unknown_fabric_rejected(self):
        with pytest.raises(ValueError, match="fabric"):
            NetworkBuilder(short_quickstart(), fabric="carrier-pigeon")

    def test_non_ringnet_spec_rejected(self):
        spec = short_quickstart()
        spec.system = "bspt"
        with pytest.raises(ValueError, match="ringnet"):
            NetworkBuilder(spec)


# ----------------------------------------------------------------------
# Live end-to-end over the queue fabric
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def queue_run():
    run = NetworkBuilder(short_quickstart(), fabric="queue",
                         time_scale=FAST, monitors=True).build()
    run.run()
    return run


class TestQueueFabricRun:
    def test_traffic_flows(self, queue_run):
        assert queue_run.scenario.fleet.total_sent > 0
        assert queue_run.scenario.net.total_app_deliveries() > 0

    def test_zero_monitor_violations(self, queue_run):
        assert queue_run.violations() == []

    def test_zero_order_violations(self, queue_run):
        assert queue_run.order is not None
        assert queue_run.order.violation_count == 0

    def test_report_shape(self, queue_run):
        rep = queue_run.report()
        assert rep["backend"] == "live"
        assert rep["fabric"] == "queue"
        assert rep["delivered"] > 0
        assert rep["lag"]["events"] > 0
        assert rep["loadgen"]["offered_rate_per_sec"] == 40.0
        assert rep["loadgen"]["total_sent"] == rep["sent"]
        # The report must be JSON-serializable: it is the CI artifact.
        json.dumps(rep, default=list)

    def test_loadgen_sampled(self, queue_run):
        assert queue_run.loadgen.samples, "load generator never sampled"
        assert queue_run.loadgen.achieved_rate_per_sec() > 0


# ----------------------------------------------------------------------
# UDP loopback fabric
# ----------------------------------------------------------------------
class TestUdpFabric:
    def test_loopback_roundtrip(self):
        run = NetworkBuilder(short_quickstart(duration_ms=1000.0),
                             fabric="udp", time_scale=0.2,
                             monitors=False).build()
        run.run()
        fabric = run.scenario.net.fabric
        assert fabric.bytes_on_wire > 0
        assert fabric.messages_delivered > 0
        assert run.scenario.net.total_app_deliveries() > 0
        assert run.order.violation_count == 0

    def test_late_registration_rejected(self):
        rt = LiveRuntime(time_scale=FAST)
        from repro.live.fabric import UdpFabric

        fabric = UdpFabric(rt)

        class Stub:
            id = "late"

            def on_message(self, msg):  # pragma: no cover
                pass

        async def scenario():
            await fabric.start()
            with pytest.raises(RuntimeError, match="after start"):
                fabric.register(Stub())
            await fabric.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Order agreement machinery
# ----------------------------------------------------------------------
class TestOrderAgreement:
    def test_inversion_count_matches_bruteforce(self):
        cases = [[], [1], [1, 2, 3], [3, 2, 1], [2, 1, 4, 3],
                 [5, 1, 4, 2, 3], [1, 3, 2, 5, 4, 0]]
        for seq in cases:
            brute = sum(1 for i in range(len(seq))
                        for j in range(i + 1, len(seq))
                        if seq[i] > seq[j])
            assert _count_inversions(list(seq)) == brute, seq

    def test_identical_sequences_agree_fully(self):
        seq = [("s0", i) for i in range(10)]
        agreement, common, inversions = order_agreement(seq, list(seq))
        assert (agreement, common, inversions) == (1.0, 10, 0)

    def test_reversed_sequences_fully_disagree(self):
        seq = [("s0", i) for i in range(10)]
        agreement, common, inversions = order_agreement(seq, seq[::-1])
        assert agreement == 0.0
        assert inversions == 45

    def test_partial_overlap(self):
        sim = [("s", 0), ("s", 1), ("s", 2), ("s", 3)]
        live = [("s", 1), ("s", 0), ("s", 2)]
        agreement, common, inversions = order_agreement(sim, live)
        assert common == 3
        assert inversions == 1
        assert agreement == pytest.approx(1 - 1 / 3)

    def test_disjoint_sequences_trivially_agree(self):
        agreement, common, _ = order_agreement([("a", 1)], [("b", 2)])
        assert common == 0
        assert agreement == 1.0


# ----------------------------------------------------------------------
# Differential harness + report schema
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def diff_report():
    return diff_spec(short_quickstart(), fabric="queue", time_scale=FAST)


class TestDiffHarness:
    def test_within_tolerance(self, diff_report):
        assert diff_report["ok"] is True
        assert all(e["ok"] for e in diff_report["envelopes"])
        assert all(g["ok"] for g in diff_report["groups"])

    def test_conformance_clean(self, diff_report):
        conf = diff_report["conformance"]
        assert conf["sim_order_violations"] == 0
        assert conf["live_order_violations"] == 0
        assert conf["live_monitor_violations"] == []

    def test_covers_every_mh(self, diff_report):
        # quickstart: 3 BR x 2 AG x 2 AP x 2 MH = 24 mobile hosts.
        assert len(diff_report["groups"]) == 24

    def test_report_matches_committed_schema(self, diff_report):
        with open(SCHEMA_PATH) as fh:
            schema = json.load(fh)
        problems = validate_report(diff_report, schema)
        assert problems == []

    def test_report_is_json_serializable(self, diff_report):
        json.dumps(diff_report)

    def test_schema_catches_missing_keys(self, diff_report):
        with open(SCHEMA_PATH) as fh:
            schema = json.load(fh)
        broken = dict(diff_report)
        del broken["envelopes"]
        broken["seed"] = "seven"
        problems = validate_report(broken, schema)
        assert any("envelopes" in p for p in problems)
        assert any("seed" in p for p in problems)

    def test_default_tolerances_preserved_in_report(self, diff_report):
        assert diff_report["tolerances"] == DEFAULT_TOLERANCES
