"""Tests for Message-Ordering and Order-Assignment (paper §4.2.1)."""

from repro.core.config import ProtocolConfig
from repro.core.messages import TokenPass
from repro.core.token import OrderingToken

from helpers import run_with_traffic, small_net


def test_token_circulates_all_top_nodes():
    sim, net, _ = run_with_traffic(until=2_000, check_order=False)
    holds = [ne.tokens_held for ne in net.top_ring_nes()]
    assert all(h > 0 for h in holds)
    # Roughly equal hold counts: the token visits nodes round-robin.
    assert max(holds) - min(holds) <= 1


def test_all_top_nodes_order_all_messages():
    sim, net, _ = run_with_traffic(n_sources=2, rate=20, until=4_000)
    sent = sum(s.sent for s in net.sources.values())
    for ne in net.top_ring_nes():
        # Each top node independently ordered (almost) every message;
        # the tail may still be in flight at cutoff.
        assert ne.messages_ordered >= sent - 10


def test_global_seqs_are_contiguous_from_zero():
    sim, net, checker = run_with_traffic(n_sources=3, rate=15, until=4_000)
    rep = checker.report()
    assert rep["distinct_gseqs"] > 0
    # All sequences 0..max delivered somewhere with no number skipped.
    mhs = net.member_hosts()
    seen = set()
    for m in mhs:
        seen.update(m.delivered_seqs())
    assert seen == set(range(max(seen) + 1))


def test_local_order_preserved_within_source():
    sim, net, _ = run_with_traffic(n_sources=2, rate=25, until=4_000)
    mh = net.member_hosts()[0]
    per_source = {}
    for gseq, payload, _ in mh.app_log:
        src, lseq = payload
        per_source.setdefault(src, []).append(lseq)
    for src, lseqs in per_source.items():
        assert lseqs == sorted(lseqs), f"{src} local order broken"
        assert lseqs == list(range(lseqs[0], lseqs[0] + len(lseqs)))


def test_ordering_state_only_on_top_ring():
    sim, net, _ = run_with_traffic(until=2_000, check_order=False)
    for node_id, ne in net.nes.items():
        if not ne.view.in_top_ring:
            assert ne.tokens_held == 0
            assert ne.wq.occupancy == 0


def test_wq_drains_after_sources_stop():
    sim, net, _ = run_with_traffic(until=3_000, check_order=False)
    for s in net.sources.values():
        s.stop()
    sim.run(until=6_000)
    for ne in net.top_ring_nes():
        assert ne.wq.occupancy == 0


def test_killed_token_is_destroyed_on_arrival():
    sim, net = small_net()
    net.start()
    sim.run(until=200)
    ne = net.top_ring_nes()[0]
    dead = OrderingToken(gid=ne.cfg.gid, token_id=(99, "evil"))
    ne.killed_token_ids.add((99, "evil"))
    before = ne.tokens_held
    ne.handle_token(TokenPass(dead))
    assert ne.tokens_held == before  # not held


def test_singleton_top_ring_orders():
    sim, net, checker = run_with_traffic(n_br=1, ags_per_br=2, until=4_000)
    assert checker.deliveries_checked > 0
    assert net.top_ring_nes()[0].tokens_held > 1


def test_two_node_top_ring_orders():
    sim, net, checker = run_with_traffic(n_br=2, n_sources=2, until=4_000)
    assert checker.deliveries_checked > 0


def test_larger_tau_still_orders_correctly():
    cfg = ProtocolConfig(tau=50.0)
    sim, net, checker = run_with_traffic(cfg=cfg, until=6_000)
    assert checker.deliveries_checked > 0


def test_source_messages_arrive_out_of_band_get_ordered():
    # Poisson traffic with jittery links: arrival order at the ring is
    # not send order, yet ordering must stay consistent.
    sim, net = small_net(seed=9)
    src = net.add_source(corresponding="br:0", rate_per_sec=40,
                         pattern="poisson")
    from repro.metrics.order_checker import OrderChecker
    checker = OrderChecker(sim.trace)
    net.start()
    src.start()
    sim.run(until=5_000)
    checker.assert_ok()
    assert checker.deliveries_checked > 0
