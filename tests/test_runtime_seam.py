"""The runtime seam: import hygiene and backend-agnosticism.

Two guarantees, each enforced by a test:

1. **Import guard** — no module in :mod:`repro.core` or :mod:`repro.net`
   imports the discrete-event engine (`repro.sim.engine`) directly; the
   protocol stack sees only the :class:`repro.runtime.api.Runtime`
   contract.  This is what keeps the live backend honest: if protocol
   code could reach the engine, "runs on any Runtime" would rot.
2. **Behavioral equivalence** — protocol components driven through the
   seam (:class:`ReliableChannel` retransmission, :class:`PeriodicTimer`)
   produce identical event sequences on a minimal hand-rolled
   ``MockRuntime`` and on the real :class:`Simulator`, proving the code
   under the seam depends on nothing beyond the contract.
"""

from __future__ import annotations

import ast
import heapq
import os
from typing import Any, Callable, List, Optional

import pytest

from repro.net.transport import ReliableChannel
from repro.runtime.api import _INHERIT, Runtime
from repro.runtime.timers import PeriodicTimer, Timer
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")

#: Packages that must stay engine-free (the seam's consumer side).
SEAM_PACKAGES = ("core", "net")
FORBIDDEN = "repro.sim.engine"


def _iter_seam_modules():
    for pkg in SEAM_PACKAGES:
        root = os.path.join(SRC, pkg)
        for dirpath, _, files in os.walk(root):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


class TestImportGuard:
    def test_seam_packages_do_not_import_the_engine(self):
        offenders = []
        for path in _iter_seam_modules():
            with open(path) as fh:
                tree = ast.parse(fh.read(), filename=path)
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.startswith(FORBIDDEN):
                            offenders.append(f"{path}:{node.lineno}")
                elif isinstance(node, ast.ImportFrom):
                    if node.module and node.module.startswith(FORBIDDEN):
                        offenders.append(f"{path}:{node.lineno}")
        assert offenders == [], (
            f"modules behind the runtime seam import {FORBIDDEN}: "
            f"{offenders} — depend on repro.runtime.api.Runtime instead")

    def test_guard_scans_a_plausible_module_count(self):
        # Belt-and-braces: if the tree moves, the guard must not
        # silently start scanning nothing.
        assert len(list(_iter_seam_modules())) >= 10


# ----------------------------------------------------------------------
# A deliberately minimal Runtime: just the contract, nothing else.
# ----------------------------------------------------------------------
class _MockHandle:
    __slots__ = ("time", "fn", "args", "owner", "cancelled")

    def __init__(self, time, fn, args, owner):
        self.time = time
        self.fn = fn
        self.args = args
        self.owner = owner
        self.cancelled = False


class MockRuntime(Runtime):
    """Hand-rolled manual-clock Runtime implementing only the seam."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.now = 0.0
        self.trace = TraceBus()
        self._heap: List[Any] = []
        self._seq = 0
        self._owner: Optional[str] = None

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 owner: Any = _INHERIT) -> _MockHandle:
        if delay < 0:
            raise ValueError("negative delay")
        if owner is _INHERIT:
            owner = self._owner
        handle = _MockHandle(self.now + delay, fn, args, owner)
        self._seq += 1
        heapq.heappush(self._heap, (handle.time, self._seq, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    owner: Any = _INHERIT) -> _MockHandle:
        return self.schedule(time - self.now, fn, *args, owner=owner)

    def cancel(self, handle: _MockHandle) -> None:
        handle.cancelled = True

    def rng(self, name: str):  # pragma: no cover - unused by these tests
        raise NotImplementedError("MockRuntime has no rng streams")

    def call_owned(self, owner: Any, fn: Callable[..., Any], *args: Any):
        saved = self._owner
        self._owner = owner
        try:
            return fn(*args)
        finally:
            self._owner = saved

    @property
    def current_owner(self) -> Optional[str]:
        return self._owner

    def run(self, until: Optional[float] = None) -> None:
        while self._heap:
            t, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if until is not None and t > until:
                heapq.heappush(self._heap, (t, self._seq, handle))
                break
            self.now = t
            self._owner = handle.owner
            handle.fn(*handle.args)
            self._owner = None
        if until is not None and self.now < until:
            self.now = until


class _StubNode:
    """The slice of NetNode a ReliableChannel touches."""

    def __init__(self, runtime: Runtime, node_id: str = "n0"):
        self.sim = runtime
        self.id = node_id
        self.alive = True
        self.sent: List[Any] = []

    @property
    def now(self) -> float:
        return self.sim.now

    def send(self, dst, msg) -> None:
        self.sent.append((self.sim.now, dst, type(msg).__name__))


class _Payload:
    """Minimal message stand-in (kind + size are all the channel reads)."""

    kind = "payload"
    size_bits = 256
    src = None
    dst = None
    sent_at = None


def _drive_retransmission(runtime: Runtime):
    """Send one never-acked payload; return the observable sequence."""
    node = _StubNode(runtime)
    gave_up: List[Any] = []
    chan = ReliableChannel(node, rto=20.0, max_retries=3,
                           on_give_up=lambda dst, p: gave_up.append(
                               (runtime.now, dst)))
    chan.send("peer", _Payload())
    runtime.run(until=500.0)
    return {
        "sends": node.sent,
        "gave_up": gave_up,
        "stats": (chan.stats.sent, chan.stats.retransmitted,
                  chan.stats.gave_up),
        "in_flight": chan.in_flight,
    }


def _drive_periodic(runtime: Runtime):
    fires: List[float] = []
    timer = PeriodicTimer(runtime, period=25.0,
                          fn=lambda: fires.append(runtime.now), phase=5.0)
    timer.start()
    runtime.schedule(140.0, timer.stop)
    runtime.run(until=300.0)
    return fires


def _drive_oneshot(runtime: Runtime):
    fires: List[float] = []
    timer = Timer(runtime, lambda: fires.append(runtime.now))
    timer.start(10.0)
    timer.start(30.0)   # restart cancels the first arm
    runtime.run(until=100.0)
    timer.start(5.0)    # re-arm after the run: fires at 105
    runtime.run(until=200.0)
    return fires


class TestBackendEquivalence:
    def test_retransmission_identical_on_mock_and_sim(self):
        mock = _drive_retransmission(MockRuntime())
        sim = _drive_retransmission(Simulator(seed=1))
        assert mock == sim
        # And the schedule itself is the documented one: the original
        # send plus 3 retries on the 20ms RTO grid, then give-up.
        assert [t for t, _, k in mock["sends"] if k == "Segment"] == \
            [0.0, 20.0, 40.0, 60.0]
        assert mock["gave_up"] == [(80.0, "peer")]
        assert mock["in_flight"] == 0

    def test_periodic_timer_identical_on_mock_and_sim(self):
        mock = _drive_periodic(MockRuntime())
        sim = _drive_periodic(Simulator(seed=1))
        assert mock == sim == [30.0, 55.0, 80.0, 105.0, 130.0]

    def test_oneshot_timer_identical_on_mock_and_sim(self):
        mock = _drive_oneshot(MockRuntime())
        sim = _drive_oneshot(Simulator(seed=1))
        assert mock == sim == [30.0, 105.0]

    def test_live_runtime_drives_the_same_retransmission(self):
        # The wall-clock backend satisfies the same contract: identical
        # logical schedule, just paced by asyncio instead of a heap run.
        from repro.live.runtime import LiveRuntime

        live = _drive_retransmission(LiveRuntime(time_scale=0.0001))
        sim = _drive_retransmission(Simulator(seed=1))
        assert live == sim

    def test_simulator_is_a_runtime(self):
        assert issubclass(Simulator, Runtime)
        assert isinstance(MockRuntime(), Runtime)
