"""Unit tests for the reliable channel (ack/retransmit/give-up/dedup)."""

import pytest

from repro.net.fabric import Fabric
from repro.net.link import LinkSpec
from repro.net.transport import ReliableChannel

from conftest import Ping, ReliableRecorder


def make_pair(sim, loss=0.0, latency=1.0, rto=10.0, max_retries=5):
    fabric = Fabric(sim)
    a = ReliableRecorder(fabric, "a", rto=rto, max_retries=max_retries)
    b = ReliableRecorder(fabric, "b", rto=rto, max_retries=max_retries)
    fabric.connect("a", "b", LinkSpec(latency=latency, loss_prob=loss))
    return fabric, a, b


def test_lossless_delivery(sim):
    _, a, b = make_pair(sim)
    for i in range(5):
        a.chan.send("b", Ping(i))
    sim.run()
    # All five arrive exactly once at t=1 (zero jitter); the channel
    # promises exactly-once, not in-order — simultaneous arrivals land
    # in causal-key order, so only the delivered *set* is pinned here.
    assert sorted(p.n for p in b.payloads) == [0, 1, 2, 3, 4]
    assert a.chan.stats.acked == 5
    assert a.chan.stats.retransmitted == 0


def test_ack_callback_fires(sim):
    _, a, b = make_pair(sim)
    a.chan.send("b", Ping(3))
    sim.run()
    assert len(a.acked) == 1
    assert a.acked[0][0] == "b"
    assert a.acked[0][1].n == 3


def test_retransmission_overcomes_loss(sim):
    _, a, b = make_pair(sim, loss=0.5, max_retries=10)
    for i in range(30):
        a.chan.send("b", Ping(i))
    sim.run(until=10_000)
    assert sorted(p.n for p in b.payloads) == list(range(30))
    assert a.chan.stats.retransmitted > 0


def test_duplicates_suppressed(sim):
    _, a, b = make_pair(sim, loss=0.4, max_retries=20)
    for i in range(20):
        a.chan.send("b", Ping(i))
    sim.run(until=20_000)
    # Exactly-once app delivery despite retransmissions.
    assert len(b.payloads) == 20
    assert len({p.n for p in b.payloads}) == 20


def test_give_up_after_max_retries(sim):
    fabric, a, b = make_pair(sim, max_retries=2)
    fabric.set_link_up("a", "b", False)
    a.chan.send("b", Ping(9))
    sim.run(until=1_000)
    assert len(a.gave_up) == 1
    assert a.gave_up[0][0] == "b"
    assert a.gave_up[0][1].n == 9
    assert a.chan.stats.gave_up == 1
    assert a.chan.in_flight == 0


def test_retry_count_respected(sim):
    fabric, a, b = make_pair(sim, max_retries=3)
    fabric.set_link_up("a", "b", False)
    a.chan.send("b", Ping())
    sim.run(until=1_000)
    # original + 3 retries = 4 transmissions attempted
    assert a.chan.stats.retransmitted == 3


def test_zero_retries_fire_and_forget(sim):
    fabric, a, b = make_pair(sim, max_retries=0)
    fabric.set_link_up("a", "b", False)
    a.chan.send("b", Ping())
    sim.run(until=1_000)
    assert a.chan.stats.retransmitted == 0
    assert a.chan.stats.gave_up == 1


def test_cancel_all_abandons_outstanding(sim):
    fabric, a, b = make_pair(sim)
    fabric.set_link_up("a", "b", False)
    a.chan.send("b", Ping())
    a.chan.send("b", Ping())
    a.chan.cancel_all("b")
    sim.run(until=1_000)
    assert a.chan.in_flight == 0
    assert a.gave_up == []  # cancelled, not given up


def test_crashed_sender_stops_retransmitting(sim):
    fabric, a, b = make_pair(sim, max_retries=5)
    fabric.set_link_up("a", "b", False)
    a.chan.send("b", Ping())
    sim.schedule(5.0, a.crash)
    sim.run(until=1_000)
    assert a.chan.stats.gave_up == 0  # frozen, neither delivered nor dropped


def test_per_destination_sequencing(sim):
    fabric = Fabric(sim)
    a = ReliableRecorder(fabric, "a")
    b = ReliableRecorder(fabric, "b")
    c = ReliableRecorder(fabric, "c")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    fabric.connect("a", "c", LinkSpec(latency=1.0))
    s1 = a.chan.send("b", Ping(1))
    s2 = a.chan.send("c", Ping(2))
    assert s1 == 0 and s2 == 0  # independent seq spaces
    sim.run()
    assert b.payloads[0].n == 1 and c.payloads[0].n == 2


def test_invalid_params_rejected(sim):
    fabric = Fabric(sim)
    node = ReliableRecorder(fabric, "x")
    with pytest.raises(ValueError):
        ReliableChannel(node, rto=0.0)
    with pytest.raises(ValueError):
        ReliableChannel(node, max_retries=-1)


def test_payload_envelope_propagated(sim):
    _, a, b = make_pair(sim)
    a.chan.send("b", Ping(5))
    sim.run()
    p = b.payloads[0]
    assert p.src == "a" and p.dst == "b" and p.sent_at == 0.0


def test_non_transport_message_passes_through(sim):
    fabric, a, b = make_pair(sim)
    # A raw (unwrapped) message must come back from accept() unchanged.
    raw = Ping(1)
    assert b.chan.accept(raw) is raw


def test_heavy_bidirectional_traffic(sim):
    _, a, b = make_pair(sim, loss=0.2, max_retries=10)
    for i in range(25):
        a.chan.send("b", Ping(i))
        b.chan.send("a", Ping(100 + i))
    sim.run(until=20_000)
    assert len(a.payloads) == 25 and len(b.payloads) == 25


def test_ack_cancels_rto_event_in_scheduler(sim):
    """An acked segment leaves no armed retransmission event behind —
    the heap-leak half of the lazy-cancel fix, seen from the channel."""
    _, a, b = make_pair(sim)
    for i in range(10):
        a.chan.send("b", Ping(i))
    sim.run()
    assert a.chan.in_flight == 0
    assert sim.pending == 0          # every RTO event cancelled or fired
    assert a.chan.stats.retransmitted == 0


def test_cancel_all_disarms_rto_events(sim):
    _, a, b = make_pair(sim, latency=1.0, rto=50.0)
    for i in range(5):
        a.chan.send("b", Ping(i))
    a.chan.cancel_all()
    before = sim.events_processed
    sim.run()
    # Only the 5 in-flight segments + 5 acks arrive; no timeout fires.
    assert a.chan.stats.retransmitted == 0
    assert a.chan.stats.gave_up == 0
    assert sim.events_processed == before + 10
