"""Unit tests for logical rings."""

import pytest

from repro.topology.ring import LogicalRing


def ring3():
    return LogicalRing("r", ["a", "b", "c"], leader="a")


def test_defaults_first_member_as_leader():
    r = LogicalRing("r", ["x", "y"])
    assert r.leader == "x"


def test_empty_ring_rejected():
    with pytest.raises(ValueError):
        LogicalRing("r", [])


def test_duplicate_members_rejected():
    with pytest.raises(ValueError):
        LogicalRing("r", ["a", "a"])


def test_foreign_leader_rejected():
    with pytest.raises(ValueError):
        LogicalRing("r", ["a"], leader="z")


def test_next_prev_wrap():
    r = ring3()
    assert r.next_of("a") == "b"
    assert r.next_of("c") == "a"
    assert r.prev_of("a") == "c"
    assert r.prev_of("b") == "a"


def test_singleton_ring_self_neighbors():
    r = LogicalRing("r", ["only"])
    assert r.next_of("only") == "only"
    assert r.prev_of("only") == "only"


def test_contains_iter_len():
    r = ring3()
    assert "b" in r and "z" not in r
    assert list(r) == ["a", "b", "c"]
    assert len(r) == 3


def test_add_member_appends():
    r = ring3()
    r.add_member("d")
    assert r.members == ["a", "b", "c", "d"]
    assert r.next_of("d") == "a"


def test_add_member_after():
    r = ring3()
    r.add_member("x", after="a")
    assert r.members == ["a", "x", "b", "c"]


def test_add_duplicate_rejected():
    r = ring3()
    with pytest.raises(ValueError):
        r.add_member("a")


def test_remove_member_splices():
    r = ring3()
    r.remove_member("b")
    assert r.members == ["a", "c"]
    assert r.next_of("a") == "c"


def test_remove_leader_elects_successor():
    r = ring3()
    r.remove_member("a")
    assert r.leader == "b"  # successor takes over


def test_remove_last_member_rejected():
    r = LogicalRing("r", ["a"])
    with pytest.raises(ValueError):
        r.remove_member("a")


def test_set_leader():
    r = ring3()
    r.set_leader("c")
    assert r.leader == "c"


def test_set_foreign_leader_rejected():
    r = ring3()
    with pytest.raises(ValueError):
        r.set_leader("zzz")


def test_rotate_preserves_order_relation():
    r = ring3()
    r.rotate_to("b")
    assert r.members == ["b", "c", "a"]
    assert r.next_of("a") == "b"  # unchanged relation


def test_index_of():
    r = ring3()
    assert r.index_of("c") == 2
    with pytest.raises(ValueError):
        r.index_of("zzz")
