"""Tests for source fleets, churn, and canned scenarios."""

import pytest

from repro.metrics.order_checker import OrderChecker
from repro.topology.tiers import Tier
from repro.workloads.churn import ChurnDriver
from repro.workloads.generators import uniform_sources
from repro.workloads.scenarios import campus_scenario, conference_scenario

from helpers import small_net


# ---------------------------------------------------------------------------
# SourceFleet
# ---------------------------------------------------------------------------
def test_uniform_sources_round_robin_distinct_nodes():
    sim, net = small_net(n_br=3)
    fleet = uniform_sources(net, s=3, rate_per_sec=10)
    assert len(fleet) == 3
    assert len({src.corresponding for src in fleet}) == 3


def test_uniform_sources_respects_s_le_r():
    sim, net = small_net(n_br=2)
    with pytest.raises(ValueError):
        uniform_sources(net, s=3, rate_per_sec=10)


def test_fleet_aggregate_rate():
    sim, net = small_net(n_br=3)
    fleet = uniform_sources(net, s=2, rate_per_sec=15)
    assert fleet.aggregate_rate_per_sec == 30


def test_fleet_start_stop_and_stagger():
    sim, net = small_net(n_br=3)
    fleet = uniform_sources(net, s=2, rate_per_sec=10)
    net.start()
    fleet.start(stagger=5.0)
    sim.run(until=2_000)
    fleet.stop()
    total = fleet.total_sent
    # Staggering shifts the second source's sends by 5 ms, so it may fit
    # one message fewer in the window.
    assert 38 <= total <= 40
    sim.run(until=3_000)
    assert fleet.total_sent == total


# ---------------------------------------------------------------------------
# Churn
# ---------------------------------------------------------------------------
def test_churn_driver_joins_and_leaves():
    sim, net = small_net(mhs_per_ap=1)
    net.start()
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    churn = ChurnDriver(net, aps, mean_interval_ms=100.0, min_members=2)
    churn.start()
    sim.run(until=5_000)
    churn.stop()
    assert churn.joins > 5
    assert churn.leaves > 0
    assert len(churn.log) == churn.joins + churn.leaves
    assert len(net.member_hosts()) >= 2  # floor respected


def test_churn_preserves_total_order():
    sim, net = small_net(mhs_per_ap=1, seed=17)
    checker = OrderChecker(sim.trace)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    churn = ChurnDriver(net, aps, mean_interval_ms=200.0)
    churn.start()
    sim.run(until=6_000)
    checker.assert_ok()


def test_churn_validation():
    sim, net = small_net()
    with pytest.raises(ValueError):
        ChurnDriver(net, ["ap:0.0.0"], mean_interval_ms=0)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------
def test_conference_scenario_runs_and_orders():
    sc = conference_scenario(seed=3, duration_ms=4_000)
    checker = OrderChecker(sc.sim.trace)
    sc.run()
    checker.assert_ok()
    assert sc.net.total_app_deliveries() > 0
    assert sc.fleet.total_sent > 0


def test_campus_scenario_moves_hosts():
    sc = campus_scenario(seed=3, mean_dwell_ms=800.0, duration_ms=6_000)
    checker = OrderChecker(sc.sim.trace)
    sc.run()
    checker.assert_ok()
    assert sc.mobility is not None
    assert sc.mobility.handoffs_driven > 0


def test_scenario_run_until_override():
    sc = conference_scenario(seed=3, duration_ms=10_000)
    sc.run(until=1_000)
    assert sc.sim.now == 1_000
