"""Unit tests for addresses, links, and the fabric."""

import pytest

from repro.net.address import make_id, tier_of
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS

from conftest import Ping, Recorder


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------
def test_make_id_formats():
    assert make_id("br", 0) == "br:0"
    assert make_id("ap", 1, 2, 3) == "ap:1.2.3"


def test_make_id_requires_indices():
    with pytest.raises(ValueError):
        make_id("br")


def test_tier_of():
    assert tier_of("ag:1.2") == "ag"
    assert tier_of("mh:0.0.0.1") == "mh"


# ---------------------------------------------------------------------------
# LinkSpec
# ---------------------------------------------------------------------------
def test_linkspec_with_loss_copies():
    spec = WIRED.with_loss(0.5)
    assert spec.loss_prob == 0.5
    assert WIRED.loss_prob == 0.0
    assert spec.latency == WIRED.latency


def test_linkspec_with_latency():
    spec = WIRED.with_latency(9.0, jitter=1.5)
    assert spec.latency == 9.0 and spec.jitter == 1.5


# ---------------------------------------------------------------------------
# Fabric
# ---------------------------------------------------------------------------
def test_duplicate_node_id_rejected(fabric):
    Recorder(fabric, "n:0")
    with pytest.raises(ValueError):
        Recorder(fabric, "n:0")


def test_self_link_rejected(fabric):
    with pytest.raises(ValueError):
        fabric.connect("a", "a", WIRED)


def test_send_without_link_raises(sim):
    fabric = Fabric(sim)  # no default spec
    Recorder(fabric, "a")
    Recorder(fabric, "b")
    with pytest.raises(KeyError):
        fabric.send("a", "b", Ping())


def test_default_spec_autocreates_link(fabric):
    a = Recorder(fabric, "a")
    Recorder(fabric, "b")
    a.send("b", Ping())
    fabric.sim.run()
    assert fabric.link("a", "b") is not None


def test_delivery_after_latency(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=4.0))
    a.send("b", Ping(7))
    sim.run()
    assert len(b.received) == 1
    assert sim.now == 4.0
    assert b.received[0].n == 7


def test_envelope_fields_filled(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    a.send("b", Ping())
    sim.run()
    msg = b.received[0]
    assert msg.src == "a" and msg.dst == "b" and msg.sent_at == 0.0


def test_link_is_bidirectional(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    b.send("a", Ping())
    sim.run()
    assert len(a.received) == 1


def test_down_link_drops(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    fabric.set_link_up("a", "b", False)
    a.send("b", Ping())
    sim.run()
    assert b.received == []
    assert fabric.messages_dropped == 1


def test_full_loss_link_drops_everything(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0, loss_prob=1.0))
    for _ in range(10):
        a.send("b", Ping())
    sim.run()
    assert b.received == []


def test_partial_loss_statistical(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0, loss_prob=0.5))
    for _ in range(400):
        a.send("b", Ping())
    sim.run()
    # Expect ~200; allow generous slack for a seeded draw.
    assert 140 <= len(b.received) <= 260


def test_jitter_bounded(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=2.0, jitter=3.0))
    times = []
    orig = b.on_message
    b.on_message = lambda m: times.append(sim.now)  # type: ignore
    for _ in range(50):
        a.send("b", Ping())
    sim.run()
    assert all(2.0 <= t <= 5.0 for t in times)


def test_bandwidth_adds_serialization_delay(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    # 8192-bit default payload at 8192 bits/s = 1s = 1000 ms.
    fabric.connect("a", "b", LinkSpec(latency=1.0, bandwidth_bps=8192 + 64))
    a.send("b", Ping())
    sim.run()
    assert sim.now == pytest.approx(1001.0, abs=10)


def test_crashed_receiver_gets_nothing(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    b.crash()
    a.send("b", Ping())
    sim.run()
    assert b.received == []


def test_crashed_sender_sends_nothing(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    a.crash()
    assert a.send("b", Ping()) is False
    sim.run()
    assert b.received == []


def test_recover_restores_delivery(sim):
    fabric = Fabric(sim)
    a = Recorder(fabric, "a")
    b = Recorder(fabric, "b")
    fabric.connect("a", "b", LinkSpec(latency=1.0))
    b.crash()
    b.recover()
    a.send("b", Ping())
    sim.run()
    assert len(b.received) == 1


def test_disconnect_removes_link(sim):
    fabric = Fabric(sim)
    Recorder(fabric, "a")
    Recorder(fabric, "b")
    fabric.connect("a", "b", WIRED)
    fabric.disconnect("a", "b")
    assert fabric.link("a", "b") is None


def test_links_listing_sorted(sim):
    fabric = Fabric(sim)
    for n in ("a", "b", "c"):
        Recorder(fabric, n)
    fabric.connect("b", "c", WIRED)
    fabric.connect("a", "b", WIRED)
    eps = [l.endpoints for l in fabric.links]
    assert eps == [("a", "b"), ("b", "c")]


def test_reconnect_updates_spec_and_raises_link(sim):
    fabric = Fabric(sim)
    Recorder(fabric, "a")
    Recorder(fabric, "b")
    fabric.connect("a", "b", WIRED)
    fabric.set_link_up("a", "b", False)
    link = fabric.connect("a", "b", WIRELESS)
    assert link.up is True
    assert link.spec == WIRELESS


def test_set_link_up_unknown_pair_raises(sim):
    fabric = Fabric(sim)
    Recorder(fabric, "a")
    Recorder(fabric, "b")
    with pytest.raises(KeyError, match="'a' <-> 'x'"):
        fabric.set_link_up("a", "x", False)
    # A configured pair works; tearing the link down then naming a
    # different pair still raises with the offending pair.
    fabric.connect("a", "b", WIRED)
    fabric.set_link_up("a", "b", False)
    with pytest.raises(KeyError, match="'b' <-> 'c'"):
        fabric.set_link_up("b", "c", True)


def test_disconnect_unknown_pair_raises(sim):
    fabric = Fabric(sim)
    Recorder(fabric, "a")
    Recorder(fabric, "b")
    with pytest.raises(KeyError, match="'a' <-> 'b'"):
        fabric.disconnect("a", "b")
    fabric.connect("a", "b", WIRED)
    fabric.disconnect("a", "b")  # first removal succeeds...
    with pytest.raises(KeyError, match="'a' <-> 'b'"):
        fabric.disconnect("a", "b")  # ...the second is an error
