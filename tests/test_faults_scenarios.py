"""Conformance of the seven adversarial fault scenarios.

Every new registry scenario must (a) actually exercise its fault plan
inside the trace-identity recording horizon, (b) run the complete
monitor suite — including PartitionRecoveryMonitor — to zero violations
at its full duration, and (c) demonstrably stress the fabric (dropped
or burst-lost traffic), so the zero-violation verdict is not vacuous.
"""

import pytest

from repro.experiments import registry
from repro.experiments.runner import build_scenario, run_point

FAULT_SCENARIOS = (
    "split_brain",
    "asymmetric_partition",
    "flapping_backbone",
    "gilbert_elliott_access",
    "degraded_wan",
    "partition_during_handoff_storm",
    "rolling_ap_brownout",
)

#: The recording horizon test_trace_identity.py uses by default; every
#: fault action must activate inside it or the sharded-identity tests
#: would never cover the fault machinery.
RECORD_HORIZON_MS = 2_500.0


def test_registry_grew_to_eighteen():
    # 18 as of the faults PR; 21 with the open-world trio; 22 with
    # open_world_mobile.
    assert len(registry.names()) == 22
    assert set(FAULT_SCENARIOS) <= set(registry.names())


@pytest.mark.parametrize("name", FAULT_SCENARIOS)
def test_fault_plan_fires_inside_recording_horizon(name):
    spec = registry.get(name)
    assert spec.faults, f"{name} carries no fault plan"
    for action in spec.faults:
        assert action.at_ms < RECORD_HORIZON_MS, (
            f"{name}: action at {action.at_ms} ms never fires inside "
            f"the {RECORD_HORIZON_MS} ms trace-identity horizon")


@pytest.mark.parametrize("name", FAULT_SCENARIOS)
def test_checked_run_is_clean_and_fault_actually_bites(name):
    result = run_point(registry.get(name), check=True)
    assert result.violations == [], (
        f"{name}: monitor violations {result.violations[:3]}")
    assert result.delivered > 0


@pytest.mark.parametrize("name", FAULT_SCENARIOS)
def test_overlay_saw_traffic(name):
    scenario = build_scenario(registry.get(name))
    scenario.run()
    overlay = scenario.net.fabric.fault_overlay
    assert overlay is not None
    report = overlay.report()
    if name in ("split_brain", "asymmetric_partition",
                "flapping_backbone", "partition_during_handoff_storm"):
        # Blocking faults tally their drops on the overlay.
        assert sum(report["drops_by_action"].values()) > 0, report
    else:
        # Degradation/burst faults surface as extra net.loss records.
        assert scenario.sim.trace.counts.get("net.loss", 0) > 60
    # Every bounded action expired by the end of the run.
    assert not overlay.active


def test_partition_recovery_reports_heals_on_partition_scenarios():
    result = run_point(registry.get("split_brain"), check=True)
    assert result.violations == []
    # The checked run's report must show the partition was observed and
    # healed (the zero-violation verdict is about a real partition).
    # run_point folds reports into RunResult.violations only; re-check
    # through the suite API instead.
    from repro.validation.suite import check_spec
    res = check_spec(registry.get("split_brain"))
    pr = res.reports["partition_recovery"]
    assert pr["partitions"] == 1 and pr["heals"] == 1
    assert res.ok, res.violations
