"""Seed-determinism as a checked property (not an assumption).

Two runs of the same :class:`ExperimentSpec` + seed must produce
byte-identical trace streams — the determinism guard every sweep,
replication-seed derivation, and record/replay workflow rests on.
"""

import pytest

from repro.experiments import registry
from repro.experiments.runner import run_point
from repro.experiments.spec import (ChurnSpec, ExperimentSpec, FailureEvent,
                                    HierarchyShape, MobilitySpec,
                                    WorkloadSpec)
from repro.validation.record import first_divergence, record_spec


def _stream(spec):
    return record_spec(spec).to_jsonl()


# ---------------------------------------------------------------------------
# The property, across systems and dynamics
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name,overrides", [
    ("quickstart", {}),
    ("campus", {}),                       # mobility (RNG-heavy)
    ("churn_heavy", {}),                  # membership churn
    ("bursty_sources", {}),               # poisson arrivals
    ("ring_vs_baselines", {"system": "unordered"}),
    ("ring_vs_baselines", {"system": "single_ring"}),
])
def test_same_spec_same_seed_byte_identical(name, overrides):
    spec = registry.get(name, **{"duration_ms": 1_500.0, "warmup_ms": 0.0,
                                 **overrides})
    a, b = _stream(spec), _stream(spec)
    assert a == b
    assert a.count("\n") > 0


def test_failure_schedule_is_deterministic():
    spec = ExperimentSpec(
        name="det-failures",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=1,
                                 mhs_per_ap=1),
        workload=WorkloadSpec(s=1, rate_per_sec=25.0),
        failures=[FailureEvent(at_ms=600.0, kind="crash_token_holder")],
        duration_ms=2_000.0, warmup_ms=0.0, seed=42,
    )
    assert _stream(spec) == _stream(spec)


def test_full_dynamics_deterministic():
    spec = ExperimentSpec(
        name="det-everything",
        hierarchy=HierarchyShape(n_br=2, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(s=2, rate_per_sec=20.0, pattern="poisson"),
        mobility=MobilitySpec(enabled=True, mean_dwell_ms=700.0),
        churn=ChurnSpec(enabled=True, mean_interval_ms=400.0),
        duration_ms=2_000.0, warmup_ms=0.0, seed=77,
    )
    assert _stream(spec) == _stream(spec)


def test_different_seeds_actually_differ():
    base = registry.get("quickstart", **{"duration_ms": 1_500.0,
                                         "warmup_ms": 0.0})
    other = base.with_overrides({"seed": base.seed + 1})
    assert _stream(base) != _stream(other)


def test_divergence_pinpoints_seed_change():
    base = registry.get("quickstart", **{"duration_ms": 1_200.0,
                                         "warmup_ms": 0.0})
    a = record_spec(base).lines
    b = record_spec(base.with_overrides({"seed": 999})).lines
    div = first_divergence(a, b)
    assert div is not None
    # Everything before the divergence index really is identical.
    assert a[:div.index] == b[:div.index]


# ---------------------------------------------------------------------------
# Observation does not perturb: checked run == unchecked run
# ---------------------------------------------------------------------------
def test_check_does_not_perturb_results():
    spec = registry.get("churn_heavy", **{"duration_ms": 2_000.0,
                                          "warmup_ms": 0.0})
    plain = run_point(spec).to_dict(include_timing=False)
    checked = run_point(spec, check=True)
    assert checked.violations == []
    checked_dict = checked.to_dict(include_timing=False)
    checked_dict.pop("violations")
    assert checked_dict == plain
