"""Unit tests for random streams and the trace bus."""

from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceBus, TraceRecord


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------
def test_same_seed_same_stream():
    a, b = RandomStreams(7), RandomStreams(7)
    assert list(a.get("x").integers(0, 100, 5)) == list(b.get("x").integers(0, 100, 5))


def test_different_seeds_differ():
    a, b = RandomStreams(7), RandomStreams(8)
    assert list(a.get("x").integers(0, 1000, 8)) != list(b.get("x").integers(0, 1000, 8))


def test_streams_independent_of_creation_order():
    a = RandomStreams(7)
    b = RandomStreams(7)
    a.get("first")
    first_then = a.get("second").random()
    only = b.get("second").random()
    assert first_then == only


def test_get_returns_same_generator():
    s = RandomStreams(1)
    assert s.get("x") is s.get("x")


def test_reset_recreates_streams():
    s = RandomStreams(1)
    v1 = s.get("x").random()
    s.reset()
    v2 = s.get("x").random()
    assert v1 == v2  # same seed path replays


def test_names_and_contains():
    s = RandomStreams(1)
    s.get("b")
    s.get("a")
    assert s.names() == ["a", "b"]
    assert "a" in s and "zzz" not in s


# ---------------------------------------------------------------------------
# TraceBus
# ---------------------------------------------------------------------------
def test_emit_without_subscribers_is_cheap():
    bus = TraceBus()
    bus.emit(1.0, "x", a=1)
    assert bus.records == []
    assert bus.counts["x"] == 1


def test_subscribe_by_kind():
    bus = TraceBus()
    got = []
    bus.subscribe("deliver", got.append)
    bus.emit(1.0, "deliver", mh="m1")
    bus.emit(2.0, "other")
    assert len(got) == 1
    assert got[0].time == 1.0
    assert got[0]["mh"] == "m1"


def test_subscribe_all_kinds():
    bus = TraceBus()
    got = []
    bus.subscribe(None, got.append)
    bus.emit(1.0, "a")
    bus.emit(2.0, "b")
    assert [r.kind for r in got] == ["a", "b"]


def test_unsubscribe():
    bus = TraceBus()
    got = []
    bus.subscribe("a", got.append)
    bus.unsubscribe("a", got.append)
    bus.emit(1.0, "a")
    assert got == []


def test_record_mode_retains():
    bus = TraceBus(record=True)
    bus.emit(1.0, "a", v=1)
    bus.emit(2.0, "b", v=2)
    assert len(bus.records) == 2
    assert [r.kind for r in bus.of_kind("a")] == ["a"]


def test_clear_resets_records_and_counts():
    bus = TraceBus(record=True)
    bus.emit(1.0, "a")
    bus.clear()
    assert bus.records == [] and bus.counts == {}


def test_record_get_default():
    rec = TraceRecord(1.0, "k", {"x": 5})
    assert rec.get("x") == 5
    assert rec.get("missing", "d") == "d"


def test_multiple_subscribers_same_kind():
    bus = TraceBus()
    a, b = [], []
    bus.subscribe("k", a.append)
    bus.subscribe("k", b.append)
    bus.emit(1.0, "k")
    assert len(a) == 1 and len(b) == 1


def test_subscription_context_manager_detaches():
    bus = TraceBus()
    got = []
    with bus.subscription("k", got.append):
        bus.emit(1.0, "k")
    bus.emit(2.0, "k")
    assert len(got) == 1
    assert bus.subscriber_count == 0


def test_subscription_detaches_on_error():
    bus = TraceBus()
    got = []
    try:
        with bus.subscription(None, got.append):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert bus.subscriber_count == 0


def test_no_subscriber_leak_across_repeated_runs():
    """Regression: monitors/collectors must not accumulate across runs.

    Before scoped subscriptions, every run that attached observers to a
    shared bus leaked them; the fast no-subscriber emit path was then
    lost forever and callbacks fired into dead objects.
    """
    bus = TraceBus()
    for _ in range(50):
        got = []
        # The same callback on both its kind and the wildcard is deduped:
        # one record, one call.
        with bus.subscription("mh.deliver", got.append), \
                bus.subscription(None, got.append):
            bus.emit(1.0, "mh.deliver", mh="m")
        assert len(got) == 1
    assert bus.subscriber_count == 0
    # The empty-list cleanup restores the cheap fast path entirely.
    assert bus._subs_by_kind == {} and bus._subs_all == []


def test_monitor_suite_leaves_no_subscribers_across_runs():
    from repro.validation.suite import standard_suite
    bus = TraceBus()
    for _ in range(10):
        suite = standard_suite("ringnet")
        suite.attach(bus)
        bus.emit(1.0, "mh.join", mh="m", ap="a")
        suite.detach()
    assert bus.subscriber_count == 0


def test_counting_disabled_skips_counts_entirely():
    bus = TraceBus(counting=False)
    bus.emit(1.0, "x", a=1)
    got = []
    with bus.subscription("x", got.append):
        bus.emit(2.0, "x", a=2)
    assert bus.counts == {}          # no bookkeeping at all
    assert len(got) == 1             # dispatch unaffected


def test_dual_subscription_dedupes_dispatch():
    """A subscriber on both its kind and the wildcard sees each record
    exactly once; distinct subscribers are unaffected."""
    bus = TraceBus()
    both, wild_only, kind_only = [], [], []
    bus.subscribe("x", both.append)
    bus.subscribe(None, both.append)
    bus.subscribe(None, wild_only.append)
    bus.subscribe("x", kind_only.append)
    bus.emit(1.0, "x", a=1)
    bus.emit(2.0, "y", a=2)
    assert [r.kind for r in both] == ["x", "y"]
    assert [r.kind for r in wild_only] == ["x", "y"]
    assert [r.kind for r in kind_only] == ["x"]


def test_dispatch_rebuilt_after_unsubscribe():
    bus = TraceBus()
    got = []
    bus.subscribe("x", got.append)
    bus.emit(1.0, "x")
    bus.unsubscribe("x", got.append)
    bus.emit(2.0, "x")
    assert len(got) == 1
    assert bus._subs_by_kind == {}   # fast path fully restored
