"""Tests for local-scope retransmission / gap recovery (§4.2.3)."""

from repro.core.config import ProtocolConfig
from repro.core.datastructures import BufferedMessage
from repro.core.messages import GapRequest, GapUnavailable
from repro.metrics.order_checker import OrderChecker
from repro.net.link import LinkSpec

from helpers import run_with_traffic, small_net


def bm(seq: int) -> BufferedMessage:
    return BufferedMessage(global_seq=seq, source="s", local_seq=seq,
                           ordering_node="br:0", payload=("s", seq))


def test_gap_request_served_from_parent_buffer():
    sim, net = small_net()
    net.start()
    sim.run(until=100)
    ag = net.nes["ag:0.0"]
    ap = net.nes["ap:0.0.0"]
    for seq in range(5):
        ag.mq.insert(bm(seq))
    # The AP asks for 1..3; the AG should re-deliver them.
    ap.chan.send("ag:0.0", GapRequest(net.cfg.gid, 1, 3))
    sim.run(until=500)
    assert ap.mq.has(1) and ap.mq.has(2) and ap.mq.has(3)
    assert ag.gap_fills_served == 3


def test_gap_request_unavailable_for_pruned_range():
    sim, net = small_net()
    net.start()
    sim.run(until=100)
    ag = net.nes["ag:0.0"]
    ap = net.nes["ap:0.0.0"]
    # The AG pruned everything below 10.
    ag.mq.valid_front = 10
    ag.mq.front = 9
    ag.mq.rear = 9
    ap.mq.rear = 5  # AP knows later messages exist
    ap.chan.send("ag:0.0", GapRequest(net.cfg.gid, 0, 4))
    sim.run(until=500)
    # The AP tombstoned the unobtainable range.
    assert all(ap.mq.get(s) is not None and ap.mq.get(s).really_lost
               for s in range(0, 5))


def test_gap_request_for_future_seqs_is_silent():
    sim, net = small_net()
    net.start()
    sim.run(until=100)
    ag = net.nes["ag:0.0"]
    ap = net.nes["ap:0.0.0"]
    ap.chan.send("ag:0.0", GapRequest(net.cfg.gid, 100, 105))
    sim.run(until=500)
    # Neither served nor condemned: the AG does not have them *yet*.
    assert not any(ap.mq.has(s) for s in range(100, 106))
    assert ag.gap_fills_served == 0


def test_gap_unavailable_tombstones_range():
    sim, net = small_net()
    net.start()
    sim.run(until=100)
    ap = net.nes["ap:0.0.0"]
    ap.mq.rear = 6
    ap.handle_gap_unavailable(GapUnavailable(net.cfg.gid, 2, 4))
    for s in (2, 3, 4):
        assert ap.mq.get(s).really_lost


def test_end_to_end_under_heavy_wired_loss():
    # Lossy *wired* links stress ring forwarding + delivery recovery.
    from repro.core.protocol import RingNet
    from repro.sim.engine import Simulator
    from repro.topology.builder import HierarchySpec
    sim = Simulator(seed=21)
    cfg = ProtocolConfig(gap_timeout=40.0)
    net = RingNet.build(sim, HierarchySpec(n_br=3, ags_per_br=2,
                                           aps_per_ag=1, mhs_per_ap=1),
                        cfg=cfg,
                        wired=LinkSpec(latency=2.0, jitter=0.5, loss_prob=0.05))
    checker = OrderChecker(sim.trace)
    src = net.add_source(rate_per_sec=15)
    net.start()
    src.start()
    sim.run(until=6_000)
    src.stop()
    sim.run(until=14_000)
    checker.assert_ok()
    counts = [m.delivered_count + m.tombstones for m in net.member_hosts()]
    # Everyone accounted for (delivered or recorded-lost) nearly all.
    assert min(counts) >= src.sent - 5


def test_end_to_end_under_heavy_wireless_loss():
    from repro.core.protocol import RingNet
    from repro.sim.engine import Simulator
    from repro.topology.builder import HierarchySpec
    sim = Simulator(seed=22)
    net = RingNet.build(sim, HierarchySpec(n_br=2, ags_per_br=2,
                                           aps_per_ag=1, mhs_per_ap=2),
                        wireless=LinkSpec(latency=5.0, jitter=2.0,
                                          loss_prob=0.15))
    checker = OrderChecker(sim.trace)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=6_000)
    src.stop()
    sim.run(until=14_000)
    checker.assert_ok()
    counts = [m.delivered_count + m.tombstones for m in net.member_hosts()]
    assert min(counts) >= src.sent - 5


def test_gap_state_resets_when_hole_fills():
    sim, net = small_net()
    net.start()
    sim.run(until=100)
    ap = net.nes["ap:0.0.0"]
    ap.mq.insert(bm(1))  # hole at 0
    ap.gap_check()
    assert ap._gap_state is not None
    ap.mq.insert(bm(0))
    ap.gap_check()
    assert ap._gap_state is None
