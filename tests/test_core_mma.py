"""Tests for MMA tables and smooth-handoff path reservation (§3)."""

from repro.core.config import ProtocolConfig
from repro.core.mma import MMATable

from helpers import small_net


# ---------------------------------------------------------------------------
# MMATable unit tests
# ---------------------------------------------------------------------------
def test_reserve_creates_standby_entry():
    t = MMATable()
    e = t.reserve("g", "ap:1", now=10.0)
    assert e.standby
    assert t.has("g", "ap:1")
    assert t.reservations == 1


def test_reserve_refreshes_existing():
    t = MMATable()
    t.reserve("g", "ap:1", now=10.0)
    e = t.reserve("g", "ap:1", now=20.0)
    assert e.refreshed_at == 20.0
    assert t.reservations == 1  # no duplicate


def test_activate_promotes():
    t = MMATable()
    t.reserve("g", "ap:1", now=0.0)
    e = t.activate("g", "ap:1", now=5.0)
    assert not e.standby
    assert t.activations == 1


def test_activate_unseen_ap_creates_active():
    t = MMATable()
    e = t.activate("g", "ap:2", now=0.0)
    assert not e.standby


def test_deactivate_demotes():
    t = MMATable()
    t.activate("g", "ap:1", now=0.0)
    t.deactivate("g", "ap:1", now=1.0)
    assert t.lookup("g")[0].standby


def test_multiple_entries_per_group():
    t = MMATable()
    t.reserve("g", "ap:1", now=0.0)
    t.reserve("g", "ap:2", now=0.0)
    assert len(t.lookup("g")) == 2


def test_expire_standby_only():
    t = MMATable()
    t.reserve("g", "ap:old", now=0.0)
    t.activate("g", "ap:live", now=0.0)
    dead = t.expire_standby(now=1_000.0, ttl=500.0)
    assert [e.ap for e in dead] == ["ap:old"]
    assert t.has("g", "ap:live")
    assert not t.has("g", "ap:old")
    assert t.expirations == 1


def test_expire_respects_refresh():
    t = MMATable()
    t.reserve("g", "ap:1", now=0.0)
    t.reserve("g", "ap:1", now=900.0)  # refresh
    dead = t.expire_standby(now=1_000.0, ttl=500.0)
    assert dead == []


# ---------------------------------------------------------------------------
# Integration: smooth handoff through reservations
# ---------------------------------------------------------------------------
def test_member_registration_activates_path_at_ag():
    sim, net = small_net(mhs_per_ap=1)
    net.start()
    sim.run(until=1_000)
    ag = net.nes["ag:0.0"]
    assert len(ag.mma.lookup(net.cfg.gid)) >= 1
    assert any(not e.standby for e in ag.mma.lookup(net.cfg.gid))


def test_neighbor_notify_reserves_sibling_paths():
    cfg = ProtocolConfig(smooth_handoff=True)
    sim, net = small_net(mhs_per_ap=0, cfg=cfg, aps_per_ag=3)
    net.start()
    net.add_mobile_host("mh:x", "ap:0.0.0")
    sim.run(until=1_000)
    ag = net.nes["ag:0.0"]
    entries = ag.mma.lookup(cfg.gid)
    aps = {e.ap for e in entries}
    # The member AP is active; its siblings hold standby reservations.
    assert "ap:0.0.0" in aps
    assert {"ap:0.0.1", "ap:0.0.2"} <= aps
    standby = {e.ap for e in entries if e.standby}
    assert {"ap:0.0.1", "ap:0.0.2"} <= standby


def test_no_reservations_when_smooth_handoff_disabled():
    cfg = ProtocolConfig(smooth_handoff=False)
    sim, net = small_net(mhs_per_ap=0, cfg=cfg, aps_per_ag=3)
    net.start()
    net.add_mobile_host("mh:x", "ap:0.0.0")
    sim.run(until=1_000)
    ag = net.nes["ag:0.0"]
    aps = {e.ap for e in ag.mma.lookup(cfg.gid)}
    assert aps == {"ap:0.0.0"}


def test_reservation_expires_and_delivery_stops():
    cfg = ProtocolConfig(smooth_handoff=True, reservation_ttl=300.0)
    sim, net = small_net(mhs_per_ap=0, cfg=cfg, aps_per_ag=2)
    src = net.add_source(rate_per_sec=10)
    net.start()
    src.start()
    net.add_mobile_host("mh:x", "ap:0.0.0")
    ag = net.nes["ag:0.0"]
    sim.run(until=200)  # within the TTL
    assert ag.has_child("ap:0.0.1")  # reserved sibling receives
    assert ag.mma.has(cfg.gid, "ap:0.0.1")
    # No MH ever arrives at the sibling: reservation must expire.
    sim.run(until=4_000)
    assert not ag.has_child("ap:0.0.1")
    assert not ag.mma.has(cfg.gid, "ap:0.0.1")


def test_reserved_sibling_is_warm_for_handoff():
    cfg = ProtocolConfig(smooth_handoff=True)
    sim, net = small_net(mhs_per_ap=0, cfg=cfg, aps_per_ag=2)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    net.add_mobile_host("mh:x", "ap:0.0.0")
    sim.run(until=2_000)
    warm_ap = net.nes["ap:0.0.1"]
    # The sibling has been receiving the stream without any member.
    assert warm_ap.mq.rear > 0
