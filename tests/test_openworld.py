"""Open-world traffic: rate curves, heavy-tailed flows, arrival driver.

Covers the spec-level pieces (RateCurve arithmetic, FlowProfile
sampling, runner wiring incl. the Theorem 5.1 retention bound) and an
end-to-end run of the ``open_world`` registry scenario where endpoints
materialize lazily on first arrival.  Trace identity of these scenarios
at shards 1/2/4 is pinned separately in test_trace_identity.py.
"""

import math

import numpy as np
import pytest

from repro.analysis.bounds import bounds_for
from repro.core.source import FlowProfile
from repro.experiments import registry
from repro.experiments.runner import build_scenario
from repro.net.link import WIRED, WIRELESS
from repro.workloads.generators import RateCurve


# ---------------------------------------------------------------------------
# RateCurve
# ---------------------------------------------------------------------------
def test_constant_curve_is_identity_and_compiles_to_none():
    c = RateCurve()
    assert c.factor(0.0) == 1.0
    assert c.factor(12345.6) == 1.0
    assert c.as_fn() is None  # constant => sources skip the indirection


def test_diurnal_curve_oscillates_and_clamps_at_zero():
    c = RateCurve(kind="diurnal", period_ms=1000.0, amplitude=0.5)
    assert c.factor(0.0) == pytest.approx(1.0)
    assert c.factor(250.0) == pytest.approx(1.5)   # peak of the sine
    assert c.factor(750.0) == pytest.approx(0.5)   # trough
    deep = RateCurve(kind="diurnal", period_ms=1000.0, amplitude=2.0)
    assert deep.factor(750.0) == 0.0  # clamped, never negative


def test_flash_crowd_curve_is_piecewise_linear():
    c = RateCurve(kind="flash", at_ms=100.0, ramp_ms=100.0,
                  peak_factor=5.0, hold_ms=200.0, decay_ms=100.0)
    assert c.factor(0.0) == 1.0                      # baseline
    assert c.factor(150.0) == pytest.approx(3.0)     # mid-ramp
    assert c.factor(250.0) == 5.0                    # holding
    assert c.factor(450.0) == pytest.approx(3.0)     # mid-decay
    assert c.factor(600.0) == 1.0                    # back to baseline


def test_curve_validation():
    with pytest.raises(ValueError):
        RateCurve(kind="square")
    with pytest.raises(ValueError):
        RateCurve(kind="diurnal", period_ms=0.0)
    with pytest.raises(ValueError):
        RateCurve(kind="flash", peak_factor=0.5)


def test_curve_from_dict_round_trips_spec_payload():
    c = RateCurve.from_dict({"kind": "flash", "at_ms": 800.0,
                             "peak_factor": 6.0})
    assert c.kind == "flash"
    assert c.peak_factor == 6.0
    assert c.as_fn() is not None


# ---------------------------------------------------------------------------
# FlowProfile
# ---------------------------------------------------------------------------
def test_flow_sizes_are_bounded_pareto_with_requested_mean():
    prof = FlowProfile(arrivals_per_sec=5.0, size_mean=8.0, alpha=1.5,
                       size_max=500)
    rng = np.random.default_rng(7)
    sizes = [prof.draw_size(rng) for _ in range(4000)]
    assert min(sizes) >= 1
    assert max(sizes) <= 500
    # Heavy-tailed: the truncated sample mean sits near (below) the
    # nominal unbounded mean, and elephants dwarf the median.
    assert 3.0 < sum(sizes) / len(sizes) < 12.0
    assert max(sizes) > 10 * sorted(sizes)[len(sizes) // 2]


def test_flow_profile_validation():
    with pytest.raises(ValueError):
        FlowProfile(arrivals_per_sec=0.0)
    with pytest.raises(ValueError):
        FlowProfile(alpha=1.0)  # infinite mean
    with pytest.raises(ValueError):
        FlowProfile(size_mean=0.5)


# ---------------------------------------------------------------------------
# Runner wiring
# ---------------------------------------------------------------------------
def test_bound_retention_pins_mq_retention_to_theorem_bound():
    spec = registry.get("open_world")
    assert spec.bound_retention
    scenario = build_scenario(spec)
    cfg = scenario.net.cfg
    rates = list(spec.workload.source_rates)
    bounds = bounds_for(cfg, ring_size=spec.hierarchy.n_br,
                        n_sources=len(rates), rate_per_sec=max(rates),
                        wired=WIRED, wireless=WIRELESS,
                        tree_depth=3 if spec.hierarchy.depth == 1
                        else spec.hierarchy.depth + 2)
    assert cfg.mq_retention == max(1, math.ceil(bounds.mq_bound_msgs))
    # The bound actually bites: far below the safe-default retention.
    from repro.core.config import ProtocolConfig
    assert cfg.mq_retention < ProtocolConfig().mq_retention


def test_openworld_extras_require_ringnet():
    with pytest.raises(ValueError, match="ringnet"):
        build_scenario(registry.get("diurnal", **{"system": "unordered"}))
    with pytest.raises(ValueError, match="ringnet"):
        build_scenario(registry.get("open_world", **{"system": "unordered"}))


# ---------------------------------------------------------------------------
# OpenWorldDriver end to end
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def openworld_run():
    spec = registry.get("open_world", **{"duration_ms": 3000.0,
                                         "warmup_ms": 0.0})
    scenario = build_scenario(spec)
    scenario.run()
    return scenario


def test_driver_materializes_endpoints_lazily(openworld_run):
    net = openworld_run.net
    drv = openworld_run.openworld
    assert drv is not None
    assert drv.sessions > 0, "no arrivals in 3s at 25/s is implausible"
    # Only endpoints that actually arrived exist as objects.
    assert 0 < net.catchment_materialized <= drv.sessions
    assert net.catchment_idle == (net.catchment_total
                                  - net.catchment_materialized)
    assert net.catchment_idle > 0, "3s of arrivals should not drain 96 slots"


def test_driver_session_accounting(openworld_run):
    drv = openworld_run.openworld
    assert drv.departures <= drv.sessions
    # Every arrive/depart pair in the log names a catchment-minted MH.
    assert drv.log
    for _t, kind, mh_id in drv.log:
        assert kind in ("arrive", "depart")
        assert mh_id.startswith("mh:")
    arrives = sum(1 for _, k, _m in drv.log if k == "arrive")
    departs = sum(1 for _, k, _m in drv.log if k == "depart")
    assert (arrives, departs) == (drv.sessions, drv.departures)
    times = [t for t, _k, _m in drv.log]
    assert times == sorted(times)


def test_arrived_endpoints_rejoin_the_multicast_group(openworld_run):
    net = openworld_run.net
    # A materialized catchment MH is a first-class protocol participant:
    # it exists in the roster and has seen membership activity.
    minted = [mh for mh_id, mh in net.mobile_hosts.items()
              if ".c" in mh_id]
    assert minted, "no catchment MH was ever materialized"
