"""Tests for metrics collectors, the order checker, and report helpers."""

import pytest

from repro.metrics.collectors import (
    BufferSampler,
    InterruptionCollector,
    LatencyCollector,
    ReliabilityCollector,
    ThroughputCollector,
    TokenRotationCollector,
)
from repro.metrics.order_checker import OrderChecker
from repro.metrics.report import format_table, percentile, summarize
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus

from helpers import run_with_traffic, small_net


# ---------------------------------------------------------------------------
# Report helpers
# ---------------------------------------------------------------------------
def test_percentile_empty():
    assert percentile([], 50) == 0.0


def test_percentile_basic():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0


def test_percentile_py_matches_numpy_exactly():
    np = pytest.importorskip("numpy")
    from repro.metrics.report import _percentile_py

    samples = [
        [7.25],                                   # single element
        [1.0, 1.0, 1.0, 1.0],                     # all duplicates
        [0.0, 0.1, 0.1, 0.2, 5.0, 5.0, 5.0],      # clustered duplicates
        [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0],
        list(range(100)),
        [1e-9, 2e-9, 3.0000000001, 1e12],
    ]
    for vals in samples:
        s = sorted(float(v) for v in vals)
        for q in (0, 50, 95, 99, 100):
            expect = float(np.percentile(np.asarray(s), q))
            assert _percentile_py(s, q) == expect, (vals, q)


@pytest.mark.parametrize("q", [0, 50, 95, 99, 100])
def test_percentile_py_matches_numpy_property(q):
    np = pytest.importorskip("numpy")
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings, strategies as st

    from repro.metrics.report import _percentile_py

    @given(st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=60))
    @settings(max_examples=120, deadline=None)
    def check(vals):
        s = sorted(vals)
        assert _percentile_py(s, q) == float(np.percentile(np.asarray(s), q))

    check()


def test_summarize_keys():
    s = summarize([1.0, 2.0, 3.0])
    assert s["mean"] == 2.0
    assert s["max"] == 3.0
    assert set(s) == {"mean", "p50", "p95", "p99", "max"}


def test_format_table_alignment():
    rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
    out = format_table(rows)
    lines = out.splitlines()
    assert len(lines) == 4  # header, sep, 2 rows
    assert lines[0].startswith("a")


def test_format_table_explicit_columns_and_floats():
    out = format_table([{"x": 1.23456, "y": 2}], columns=["y", "x"])
    assert out.splitlines()[0].split()[0] == "y"
    assert "1.23" in out


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


# ---------------------------------------------------------------------------
# Collectors against synthetic traces
# ---------------------------------------------------------------------------
def test_latency_collector_warmup_filter():
    bus = TraceBus()
    col = LatencyCollector(bus, warmup=100.0)
    bus.emit(50.0, "mh.deliver", mh="m", latency=5.0)
    bus.emit(150.0, "mh.deliver", mh="m", latency=7.0)
    assert col.samples == [7.0]
    assert col.count == 1


def test_throughput_collector_rates():
    bus = TraceBus()
    col = ThroughputCollector(bus)
    for t in range(10):
        bus.emit(t * 100.0, "source.send", source="s", local_seq=t)
        bus.emit(t * 100.0 + 10, "mh.deliver", mh="m1", latency=1.0)
        bus.emit(t * 100.0 + 10, "mh.deliver", mh="m2", latency=1.0)
    # 10 sends over 1000 ms = 10 msg/s.
    assert col.sent_rate(0, 1_000) == pytest.approx(10.0)
    assert col.goodput(0, 1_000) == pytest.approx(10.0)
    assert col.min_goodput(0, 1_000) == pytest.approx(10.0)


def test_interruption_collector_pairs_handoff_with_next_delivery():
    bus = TraceBus()
    col = InterruptionCollector(bus)
    bus.emit(100.0, "mh.handoff", mh="m", old="a", new="b", front=0)
    bus.emit(140.0, "mh.deliver", mh="m", latency=1.0)
    bus.emit(200.0, "mh.handoff", mh="m", old="b", new="c", front=1)
    bus.emit(201.0, "mh.handoff", mh="m", old="c", new="d", front=1)
    assert col.interruptions == [40.0]
    assert col.censored == 1  # double handoff without delivery between


def test_reliability_collector_ratios():
    bus = TraceBus()
    col = ReliabilityCollector(bus)
    for i in range(9):
        bus.emit(1.0, "mh.deliver", mh="m", latency=1.0)
    bus.emit(1.0, "mh.tombstone", mh="m", gseq=9)
    assert col.delivery_ratio() == pytest.approx(0.9)
    assert col.worst_mh_ratio() == pytest.approx(0.9)


def test_reliability_collector_empty_is_perfect():
    bus = TraceBus()
    col = ReliabilityCollector(bus)
    assert col.delivery_ratio() == 1.0


# ---------------------------------------------------------------------------
# Windowed aggregation + per-MH memory regression
# ---------------------------------------------------------------------------
def test_latency_collector_windowed_aggregates():
    bus = TraceBus()
    col = LatencyCollector(bus, window_ms=100.0)
    bus.emit(50.0, "mh.deliver", mh="m1", latency=5.0)
    bus.emit(120.0, "mh.deliver", mh="m1", latency=7.0)
    bus.emit(130.0, "mh.deliver", mh="m2", latency=9.0)
    series = col.window_series()
    assert [t for t, _ in series] == [0.0, 100.0]
    assert series[0][1] == {"count": 1, "mean": 5.0, "min": 5.0, "max": 5.0}
    assert series[1][1] == {"count": 2, "mean": 8.0, "min": 7.0, "max": 9.0}
    per_mh = col.mh_summary()
    assert per_mh["m1"]["count"] == 2
    assert per_mh["m1"]["mean"] == 6.0
    assert per_mh["m2"] == {"count": 1, "mean": 9.0, "min": 9.0, "max": 9.0}


def test_per_mh_state_independent_of_delivery_count():
    # The million-endpoint regression: feeding one MH 5000 deliveries
    # must not create 5000 entries anywhere — per-MH state is a
    # fixed-size aggregate plus one integer per touched window.
    bus = TraceBus()
    lat = LatencyCollector(bus)
    thr = ThroughputCollector(bus)
    for _ in range(5_000):
        bus.emit(250.0, "mh.deliver", mh="m", latency=1.0)
    assert len(thr.deliveries["m"]) == 1       # one window bucket
    assert thr.deliveries["m"][2] == 5_000     # holding the full count
    assert len(lat.windows) == 1
    stats = lat.by_mh["m"]
    assert stats.count == 5_000
    assert not hasattr(stats, "__dict__")      # __slots__: fixed size


def test_throughput_collector_memory_pinned_per_mh():
    import gc
    import tracemalloc

    def feed(per_mh: int):
        gc.collect()
        tracemalloc.start()
        bus = TraceBus()
        col = ThroughputCollector(bus)
        for m in range(200):
            for i in range(per_mh):
                bus.emit((i * 1_000.0) / per_mh, "mh.deliver",
                         mh=f"mh{m}", latency=1.0)
        gc.collect()
        size, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del col, bus
        return size

    light = feed(10)
    heavy = feed(500)   # 50x the deliveries, same 10 windows per MH
    # Pre-windowing this ratio was ~25x (a float per delivery); with
    # windowed counts both runs hold the same buckets.
    assert heavy < light * 2.0, (light, heavy)
    # And the absolute footprint stays small: well under 2 KiB per MH.
    assert heavy < 200 * 2_048, heavy


# ---------------------------------------------------------------------------
# Collectors against a live run
# ---------------------------------------------------------------------------
def test_token_rotation_collector_measures_ring():
    sim, net = small_net()
    col = TokenRotationCollector(sim.trace)
    net.start()
    sim.run(until=2_000)
    s = col.summary()
    assert s["mean"] > 0
    # Rotation ≈ r × (hold + hop): sanity band for the default topology.
    assert 2.0 < s["mean"] < 60.0


def test_buffer_sampler_tracks_peaks():
    sim, net = small_net()
    src = net.add_source(rate_per_sec=40)
    sampler = BufferSampler(sim, net.buffer_reports, period=10.0)
    sampler.start()
    net.start()
    src.start()
    sim.run(until=3_000)
    assert sampler.series
    assert sampler.max_mq() >= 0
    assert len(sampler.peak_mq) == len(net.nes)


# ---------------------------------------------------------------------------
# OrderChecker violation detection (must catch bad streams)
# ---------------------------------------------------------------------------
def test_checker_catches_non_monotone():
    bus = TraceBus()
    c = OrderChecker(bus, check_validity=False)
    bus.emit(1.0, "mh.deliver", mh="m", gseq=5, latency=1, source="s",
             local_seq=5)
    bus.emit(2.0, "mh.deliver", mh="m", gseq=4, latency=1, source="s",
             local_seq=4)
    assert not c.ok
    assert any("monotonicity" in v for v in c.violations)


def test_checker_catches_silent_gap():
    bus = TraceBus()
    c = OrderChecker(bus, check_validity=False)
    bus.emit(1.0, "mh.deliver", mh="m", gseq=0, latency=1, source="s",
             local_seq=0)
    bus.emit(2.0, "mh.deliver", mh="m", gseq=2, latency=1, source="s",
             local_seq=2)
    assert any("gap" in v for v in c.violations)


def test_checker_allows_tombstoned_gap():
    bus = TraceBus()
    c = OrderChecker(bus, check_validity=False)
    bus.emit(1.0, "mh.deliver", mh="m", gseq=0, latency=1, source="s",
             local_seq=0)
    bus.emit(1.5, "mh.tombstone", mh="m", gseq=1)
    bus.emit(2.0, "mh.deliver", mh="m", gseq=2, latency=1, source="s",
             local_seq=2)
    assert c.ok


def test_checker_catches_disagreement():
    bus = TraceBus()
    c = OrderChecker(bus, check_validity=False)
    bus.emit(1.0, "mh.deliver", mh="m1", gseq=0, latency=1, source="s",
             local_seq=0)
    bus.emit(2.0, "mh.deliver", mh="m2", gseq=0, latency=1, source="s",
             local_seq=9)
    assert any("agreement" in v for v in c.violations)


def test_checker_catches_invalid_delivery():
    bus = TraceBus()
    c = OrderChecker(bus, check_validity=True)
    bus.emit(1.0, "mh.deliver", mh="m", gseq=0, latency=1, source="ghost",
             local_seq=0)
    assert any("validity" in v for v in c.violations)


def test_checker_assert_ok_raises():
    bus = TraceBus()
    c = OrderChecker(bus, check_validity=False)
    bus.emit(1.0, "mh.deliver", mh="m", gseq=1, latency=1, source="s",
             local_seq=1)
    bus.emit(2.0, "mh.deliver", mh="m", gseq=1, latency=1, source="s",
             local_seq=1)
    with pytest.raises(AssertionError):
        c.assert_ok()


def test_checker_clean_run_reports_ok():
    sim, net, checker = run_with_traffic(until=3_000)
    rep = checker.report()
    assert rep["violations"] == 0
    assert rep["deliveries"] > 0
