"""Trace record / replay / diff tests."""

import pytest

from repro.experiments import registry
from repro.sim.trace import TraceBus, TraceRecord
from repro.validation.record import (
    TraceRecorder,
    first_divergence,
    line_to_record,
    read_jsonl,
    record_spec,
    record_to_line,
    replay,
    write_jsonl,
)
from repro.validation.suite import standard_suite


def _short(name="quickstart", duration=1_500.0, **overrides):
    return registry.get(name, **{"duration_ms": duration, "warmup_ms": 0.0,
                                 **overrides})


# ---------------------------------------------------------------------------
# Canonical serialization
# ---------------------------------------------------------------------------
def test_line_roundtrip_preserves_tuples():
    rec = TraceRecord(12.5, "token.hold",
                      {"node": "br:0", "next_gseq": 4,
                       "token_id": (0, "br:0")})
    back = line_to_record(record_to_line(rec))
    assert back.time == rec.time
    assert back.kind == rec.kind
    assert back.attrs == rec.attrs
    assert isinstance(back["token_id"], tuple)


def test_record_to_line_is_canonical():
    a = TraceRecord(1.0, "k", {"b": 2, "a": 1})
    b = TraceRecord(1.0, "k", {"a": 1, "b": 2})
    assert record_to_line(a) == record_to_line(b)


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------
def test_recorder_captures_and_detaches():
    bus = TraceBus()
    with TraceRecorder(bus) as rec:
        bus.emit(1.0, "x", v=1)
        bus.emit(2.0, "y", v=2)
    bus.emit(3.0, "z", v=3)  # after detach: not captured
    assert rec.count == 2
    assert len(rec.lines) == 2
    assert bus.subscriber_count == 0


def test_recorder_file_roundtrip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    records = [TraceRecord(float(i), "k", {"i": i}) for i in range(5)]
    assert write_jsonl(path, records) == 5
    back = read_jsonl(path)
    assert [record_to_line(r) for r in back] \
        == [record_to_line(r) for r in records]


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
def test_replay_reproduces_online_monitor_verdicts():
    spec = _short()
    rec = record_spec(spec)
    records = [line_to_record(line) for line in rec.lines]
    suite = standard_suite("ringnet")
    replay(records, suite)
    assert suite.ok
    # Replayed deliveries match the online count.
    deliveries = sum(1 for r in records if r.kind == "mh.deliver")
    assert suite.get("total_order").deliveries_checked == deliveries
    assert deliveries > 0


def test_replay_detects_crafted_violation():
    records = [
        TraceRecord(0.0, "mh.join", {"mh": "mh:a", "ap": "ap:0"}),
        TraceRecord(1.0, "mh.member", {"mh": "mh:a", "base": -1}),
        TraceRecord(2.0, "mh.leave", {"mh": "mh:a", "ap": "ap:0"}),
        TraceRecord(3.0, "mh.deliver", {"mh": "mh:a", "gseq": 0,
                                        "source": "s", "local_seq": 0}),
    ]
    suite = standard_suite("ringnet")
    replay(records, suite)
    assert not suite.ok
    assert any("after leaving" in v for v in suite.all_violations())


def test_replay_detaches_monitors_even_midstream():
    class Boom(Exception):
        pass

    bad = [TraceRecord(0.0, "mh.deliver", {})]  # missing attrs -> KeyError
    suite = standard_suite("ringnet")
    with pytest.raises(KeyError):
        replay(bad, suite)
    # All monitors detached despite the error.
    assert all(m._trace is None for m in suite)


# ---------------------------------------------------------------------------
# Determinism + divergence
# ---------------------------------------------------------------------------
def test_same_seed_streams_identical_and_diff_clean():
    a = record_spec(_short())
    b = record_spec(_short())
    assert a.to_jsonl() == b.to_jsonl()
    assert first_divergence(a.lines, b.lines) is None


def test_different_seed_streams_diverge_with_pinpoint():
    a = record_spec(_short(seed=1))
    b = record_spec(_short(seed=2))
    div = first_divergence(a.lines, b.lines)
    assert div is not None
    assert div.index >= 0
    assert "record" in div.describe()


def test_divergence_on_truncated_stream():
    a = [TraceRecord(0.0, "k", {"i": 0}), TraceRecord(1.0, "k", {"i": 1})]
    div = first_divergence(a, a[:1])
    assert div is not None and div.index == 1 and div.right is None


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_cli_record_replay_diff(tmp_path, capsys):
    from repro.validation.__main__ import main

    a = str(tmp_path / "a.jsonl")
    b = str(tmp_path / "b.jsonl")
    assert main(["record", "quickstart", "--duration", "1200",
                 "--out", a]) == 0
    assert main(["record", "quickstart", "--duration", "1200",
                 "--out", b]) == 0
    assert main(["diff", a, b]) == 0
    assert main(["replay", a]) == 0
    out = capsys.readouterr().out
    assert "identical" in out
    assert "no violations" in out
