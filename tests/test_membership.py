"""Tests for membership tables and the trace-driven service."""

from repro.membership.events import EventKind, MembershipEvent
from repro.membership.protocol import MembershipService
from repro.membership.tables import GroupView
from repro.topology.tiers import Tier

from helpers import small_net


# ---------------------------------------------------------------------------
# GroupView
# ---------------------------------------------------------------------------
def test_join_adds_member():
    v = GroupView("g")
    v.apply_join("mh:1", "ap:0", at=1.0)
    assert "mh:1" in v
    assert v.size == 1
    assert v.joins == 1


def test_join_idempotent_for_live_member():
    v = GroupView("g")
    v.apply_join("mh:1", "ap:0", at=1.0)
    v.apply_join("mh:1", "ap:1", at=2.0)
    assert v.joins == 1
    assert v.record("mh:1").ap == "ap:1"


def test_leave_removes_member():
    v = GroupView("g")
    v.apply_join("mh:1", "ap:0", at=1.0)
    v.apply_leave("mh:1", at=2.0)
    assert "mh:1" not in v
    assert v.leaves == 1


def test_failure_counted_separately():
    v = GroupView("g")
    v.apply_join("mh:1", "ap:0", at=1.0)
    v.apply_leave("mh:1", at=2.0, failure=True)
    assert v.failures == 1 and v.leaves == 0


def test_rejoin_after_leave():
    v = GroupView("g")
    v.apply_join("mh:1", "ap:0", at=1.0)
    v.apply_leave("mh:1", at=2.0)
    v.apply_join("mh:1", "ap:2", at=3.0)
    assert "mh:1" in v
    assert v.joins == 2


def test_handoff_does_not_bump_version():
    v = GroupView("g")
    v.apply_join("mh:1", "ap:0", at=1.0)
    version = v.version
    v.apply_handoff("mh:1", "ap:5", at=2.0)
    assert v.version == version  # "no notion of handoff" in membership
    assert v.record("mh:1").ap == "ap:5"
    assert v.handoffs == 1


def test_aps_hosting_members():
    v = GroupView("g")
    v.apply_join("mh:1", "ap:0", at=1.0)
    v.apply_join("mh:2", "ap:0", at=1.0)
    v.apply_join("mh:3", "ap:1", at=1.0)
    assert v.aps_hosting_members() == {"ap:0", "ap:1"}


def test_leave_unknown_member_is_noop():
    v = GroupView("g")
    v.apply_leave("ghost", at=1.0)
    assert v.leaves == 0


# ---------------------------------------------------------------------------
# MembershipEvent
# ---------------------------------------------------------------------------
def test_event_str_forms():
    e1 = MembershipEvent(1.0, EventKind.JOIN, "mh:1", ap="ap:0")
    e2 = MembershipEvent(2.0, EventKind.HANDOFF, "mh:1", ap="ap:1",
                         old_ap="ap:0")
    assert "join" in str(e1)
    assert "handoff" in str(e2)


# ---------------------------------------------------------------------------
# MembershipService against a live protocol
# ---------------------------------------------------------------------------
def net_with_service(n_mhs: int = 4, batch_interval: float = 50.0):
    """Build a net, attach the service BEFORE any MH joins."""
    sim, net = small_net(mhs_per_ap=0, aps_per_ag=2)
    svc = MembershipService(net.cfg.gid, sim.trace,
                            batch_interval=batch_interval)
    net.start()
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    for i in range(n_mhs):
        net.add_mobile_host(f"mh:{i}", aps[i % len(aps)])
    return sim, net, svc


def test_service_tracks_initial_joins():
    sim, net, svc = net_with_service(n_mhs=4)
    sim.run(until=1_000)
    assert svc.view.size == 4
    assert svc.join_latencies  # measured join round-trips
    assert all(lat > 0 for lat in svc.join_latencies)


def test_service_tracks_leaves():
    sim, net, svc = net_with_service(n_mhs=3)
    sim.run(until=500)
    net.member_hosts()[0].leave()
    sim.run(until=1_000)
    assert svc.view.leaves == 1
    assert svc.view.size == 2


def test_service_tracks_handoffs():
    sim, net, svc = net_with_service(n_mhs=2)
    sim.run(until=500)
    net.handoff("mh:0", "ap:1.0.0")
    sim.run(until=1_000)
    assert svc.view.handoffs >= 1
    assert svc.view.record("mh:0").ap == "ap:1.0.0"


def test_batching_reduces_updates():
    sim, net, svc = net_with_service(n_mhs=6, batch_interval=1_000.0)
    sim.run(until=500)
    svc.flush_batches()
    assert svc.updates_with_batching() < svc.updates_without_batching()


def test_summary_shape():
    sim, net, svc = net_with_service(n_mhs=2)
    sim.run(until=500)
    s = svc.summary()
    assert {"members", "joins", "leaves", "handoffs", "events",
            "batched_updates", "mean_join_latency"} <= set(s)
