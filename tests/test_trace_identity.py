"""Byte-identity of every registry scenario against seed-commit traces.

The golden streams under ``tests/data/seed_traces/`` were recorded at
the pre-optimization seed state of the simulator (before heap
compaction, the tuple heap, the field-wise token snapshot, the deduped
trace dispatch, the MQ pending index, and the transport timer rework).
Every optimization of the hot paths must keep each scenario's canonical
JSONL stream **byte-identical**: ``first_divergence`` over the full
stream is the proof that ordering, membership, and timing behaviour did
not move at all.

Regenerating goldens (only after an *intentional* behaviour change —
never to make an optimization "pass"):

    PYTHONPATH=src python tests/regen_seed_traces.py
"""

import gzip
import os

import pytest

from repro.experiments import registry
from repro.validation.record import first_divergence, record_spec, replay
from repro.validation.suite import standard_suite

TRACE_DIR = os.path.join(os.path.dirname(__file__), "data", "seed_traces")

#: Shortened recording horizons (ms).  Durations are trimmed for suite
#: speed but always cover every scheduled failure event of the scenario
#: (failure_drill crashes at 3000/6000, correlated_ap_failures at 5000).
#: Every fault-plan scenario (split_brain & co.) activates all of its
#: actions inside the default horizon — asserted by
#: tests/test_faults_scenarios.py — so the sharded-identity runs below
#: exercise partitions, degradation, flapping, and burst loss too.
DURATIONS = {
    "failure_drill": 7000.0,
    "correlated_ap_failures": 6000.0,
}
DEFAULT_DURATION = 2500.0


def record(name: str):
    """Record ``name`` exactly the way the goldens were recorded."""
    duration = DURATIONS.get(name, DEFAULT_DURATION)
    spec = registry.get(name)
    overrides = {"duration_ms": duration}
    if spec.warmup_ms >= duration:
        overrides["warmup_ms"] = duration / 2
    return record_spec(spec.with_overrides(overrides))


def golden_lines(name: str):
    path = os.path.join(TRACE_DIR, f"{name}.jsonl.gz")
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return [line.rstrip("\n") for line in fh if line.strip()]


def test_all_registry_scenarios_have_goldens():
    missing = [n for n in registry.names()
               if not os.path.exists(os.path.join(TRACE_DIR,
                                                  f"{n}.jsonl.gz"))]
    assert missing == [], f"no seed trace recorded for {missing}"


@pytest.mark.parametrize("name", registry.names())
def test_trace_byte_identical_to_seed(name):
    rec = record(name)
    div = first_divergence(golden_lines(name), rec.lines)
    assert div is None, (
        f"{name} diverged from its seed-commit trace at "
        f"{div.describe()}")


@pytest.mark.parametrize("name", registry.names())
def test_streamed_trace_byte_identical_to_seed(name, tmp_path):
    """The streaming sink writes exactly the lines the recorder keeps.

    Same run as above but through ``record_spec(stream_path=...)`` — the
    windowed gzip sink — then read back from disk.  A small window
    forces many flush boundaries inside every scenario.
    """
    from repro.sim.trace import read_trace_lines

    duration = DURATIONS.get(name, DEFAULT_DURATION)
    spec = registry.get(name)
    overrides = {"duration_ms": duration}
    if spec.warmup_ms >= duration:
        overrides["warmup_ms"] = duration / 2
    path = str(tmp_path / f"{name}.jsonl.gz")
    sink = record_spec(spec.with_overrides(overrides), stream_path=path,
                       window=256)
    div = first_divergence(golden_lines(name), read_trace_lines(path))
    assert div is None, (
        f"{name} streamed trace diverged from its seed-commit trace at "
        f"{div.describe()}")
    assert sink.count == len(golden_lines(name))


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_streamed_trace_byte_identical(shards, tmp_path):
    """Sharded runs stream their merged lines byte-identically too.

    The sharded stream writes the same merged-lines object the stream-off
    sharded identity test (below, full 18-scenario matrix) already
    compares, so one scenario per shard count suffices to cover the
    write-and-read-back path.
    """
    from repro.shard import record_sharded
    from repro.sim.trace import read_trace_lines

    spec = registry.get("quickstart").with_overrides(
        {"duration_ms": DEFAULT_DURATION})
    path = str(tmp_path / "quickstart.jsonl.gz")
    lines = record_sharded(spec, shards, stream_path=path)
    assert read_trace_lines(path) == lines
    div = first_divergence(golden_lines("quickstart"), lines)
    assert div is None, div and div.describe()


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", registry.names())
def test_sharded_trace_byte_identical_to_sequential(name, shards):
    """The space-parallel backend's determinism guarantee, in full.

    Re-record each scenario with K worker shards and compare the merged
    canonical stream against the sequential golden byte for byte.  The
    goldens equal a fresh sequential recording (asserted above), so
    this transitively proves sharded == sequential for every registry
    scenario — crossing the window protocol, the replicated control
    plane, churn/token-holder synchronization probes, cross-shard
    handoffs, and the deterministic merge.
    """
    from repro.shard import record_sharded

    duration = DURATIONS.get(name, DEFAULT_DURATION)
    spec = registry.get(name)
    overrides = {"duration_ms": duration}
    if spec.warmup_ms >= duration:
        overrides["warmup_ms"] = duration / 2
    lines = record_sharded(spec.with_overrides(overrides), shards)
    div = first_divergence(golden_lines(name), lines)
    assert div is None, (
        f"{name} with {shards} shards diverged from the sequential "
        f"engine at {div.describe()}")


#: Representative subset for the deeper 8-way decomposition: the
#: smoke scenario, the two mobility-heavy ones (cross-shard handoffs,
#: open-world churn — the paths rebalancing exercises hardest), and one
#: fault-plan scenario (partitions + probe-synchronized activations).
SHARDS8_SUBSET = ["quickstart", "handoff_storm", "open_world_mobile",
                  "split_brain"]


@pytest.mark.parametrize("name", SHARDS8_SUBSET)
def test_sharded_trace_byte_identical_at_eight_shards(name):
    """Identity survives the 8-way split, where BR units must be split
    below subtree granularity and the rebalancer has the most shards to
    move ownership between."""
    from repro.shard import record_sharded

    duration = DURATIONS.get(name, DEFAULT_DURATION)
    spec = registry.get(name)
    overrides = {"duration_ms": duration}
    if spec.warmup_ms >= duration:
        overrides["warmup_ms"] = duration / 2
    lines = record_sharded(spec.with_overrides(overrides), 8)
    div = first_divergence(golden_lines(name), lines)
    assert div is None, (
        f"{name} with 8 shards diverged from the sequential engine at "
        f"{div.describe()}")


def test_recorded_stream_replays_through_monitor_suite():
    """The golden streams stay consumable by the offline monitor path."""
    from repro.validation.record import line_to_record

    records = [line_to_record(line) for line in golden_lines("quickstart")]
    suite = standard_suite("ringnet")
    replay(records, suite)
    assert suite.all_violations() == []
