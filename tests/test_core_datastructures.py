"""Unit tests for MQ / WQ / WT (paper §4.1)."""

import pytest

from repro.core.datastructures import (
    BufferedMessage,
    MessageQueue,
    WorkingQueue,
    WorkingTable,
    WQEntry,
)


def bm(seq: int, **kw) -> BufferedMessage:
    defaults = dict(global_seq=seq, source="src:0", local_seq=seq,
                    ordering_node="br:0", payload=("p", seq))
    defaults.update(kw)
    return BufferedMessage(**defaults)


# ---------------------------------------------------------------------------
# MessageQueue
# ---------------------------------------------------------------------------
def test_mq_initial_pointers():
    mq = MessageQueue()
    assert mq.front == -1 and mq.rear == -1 and mq.valid_front == 0
    assert mq.occupancy == 0


def test_mq_start_seq_offsets_pointers():
    mq = MessageQueue(start_seq=10)
    assert mq.front == 9 and mq.valid_front == 10
    assert mq.insert(bm(10))
    assert not mq.insert(bm(9))  # below membership base: stale


def test_mq_insert_and_get():
    mq = MessageQueue()
    assert mq.insert(bm(0))
    assert mq.get(0).payload == ("p", 0)
    assert mq.has(0) and 0 in mq


def test_mq_duplicate_rejected():
    mq = MessageQueue()
    assert mq.insert(bm(0))
    assert not mq.insert(bm(0))
    assert mq.inserted == 1


def test_mq_rear_tracks_max():
    mq = MessageQueue()
    mq.insert(bm(5))
    mq.insert(bm(2))
    assert mq.rear == 5


def test_mq_out_of_order_insert_then_advance():
    mq = MessageQueue()
    mq.insert(bm(1))
    mq.mark_delivered(1)
    assert mq.advance_front() == 0  # hole at 0
    mq.insert(bm(0))
    mq.mark_delivered(0)
    assert mq.advance_front() == 2
    assert mq.front == 1


def test_mq_advance_stops_at_undelivered():
    mq = MessageQueue()
    for i in range(3):
        mq.insert(bm(i))
    mq.mark_delivered(0)
    assert mq.advance_front() == 1
    assert mq.front == 0


def test_mq_tombstone_counts_as_delivered():
    mq = MessageQueue()
    mq.insert(bm(0))
    mq.mark_delivered(0)
    mq.tombstone_lost(1)
    mq.insert(bm(2))
    mq.mark_delivered(2)
    assert mq.advance_front() == 3
    t = mq.get(1)
    assert t.really_lost and t.delivered and not t.received


def test_mq_tombstone_existing_message():
    mq = MessageQueue()
    mq.insert(bm(0))
    mq.tombstone_lost(0)
    assert mq.get(0).really_lost


def test_mq_prune_respects_retention():
    mq = MessageQueue()
    for i in range(10):
        mq.insert(bm(i))
        mq.mark_delivered(i)
    mq.advance_front()
    dropped = mq.prune(retention=3)
    assert dropped == 7
    assert mq.valid_front == 7
    assert not mq.has(6) and mq.has(7)


def test_mq_prune_never_drops_undelivered():
    mq = MessageQueue()
    for i in range(5):
        mq.insert(bm(i))
    mq.mark_delivered(0)
    mq.advance_front()
    mq.prune(retention=0)
    assert mq.has(1)  # undelivered survives (front stopped before it)


def test_mq_stale_insert_rejected_after_prune():
    mq = MessageQueue()
    for i in range(5):
        mq.insert(bm(i))
        mq.mark_delivered(i)
    mq.advance_front()
    mq.prune(retention=0)
    assert not mq.insert(bm(2))


def test_mq_peak_occupancy():
    mq = MessageQueue()
    for i in range(4):
        mq.insert(bm(i))
    assert mq.peak_occupancy == 4
    for i in range(4):
        mq.mark_delivered(i)
    mq.advance_front()
    mq.prune(0)
    assert mq.occupancy == 0
    assert mq.peak_occupancy == 4


def test_mq_capacity_overflow_counted():
    mq = MessageQueue(capacity=2)
    for i in range(4):
        mq.insert(bm(i))
    assert mq.overflows == 2
    assert mq.occupancy == 4  # soft overflow: measured, not dropped


def test_mq_negative_capacity_rejected():
    with pytest.raises(ValueError):
        MessageQueue(capacity=-1)


def test_mq_range_iterates_in_order():
    mq = MessageQueue()
    for i in (3, 1, 2):
        mq.insert(bm(i))
    assert [m.global_seq for m in mq.range(1, 3)] == [1, 2, 3]
    assert [m.global_seq for m in mq.range(0, 0)] == []


def test_mq_undelivered_listing():
    mq = MessageQueue()
    for i in range(3):
        mq.insert(bm(i))
    mq.mark_delivered(1)
    assert [m.global_seq for m in mq.undelivered()] == [0, 2]


# ---------------------------------------------------------------------------
# WorkingQueue
# ---------------------------------------------------------------------------
def wq_entry(node: str, lseq: int) -> WQEntry:
    return WQEntry(ordering_node=node, source=f"src-{node}", local_seq=lseq,
                   payload=(node, lseq), created_at=0.0, arrived_at=0.0)


def test_wq_insert_and_stream():
    wq = WorkingQueue()
    assert wq.insert(wq_entry("br:0", 0))
    assert wq.insert(wq_entry("br:0", 1))
    assert wq.insert(wq_entry("br:1", 0))
    assert len(wq.stream("br:0")) == 2
    assert wq.occupancy == 3


def test_wq_duplicate_rejected():
    wq = WorkingQueue()
    assert wq.insert(wq_entry("br:0", 0))
    assert not wq.insert(wq_entry("br:0", 0))


def test_wq_remove():
    wq = WorkingQueue()
    wq.insert(wq_entry("br:0", 0))
    e = wq.remove("br:0", 0)
    assert e is not None and e.local_seq == 0
    assert wq.remove("br:0", 0) is None
    assert wq.remove("br:9", 5) is None


def test_wq_peak_tracks_max():
    wq = WorkingQueue()
    for i in range(5):
        wq.insert(wq_entry("br:0", i))
    for i in range(5):
        wq.remove("br:0", i)
    assert wq.occupancy == 0
    assert wq.peak_occupancy == 5


def test_wq_capacity_overflow_counted():
    wq = WorkingQueue(capacity_per_stream=2)
    for i in range(3):
        wq.insert(wq_entry("br:0", i))
    assert wq.overflows == 1


def test_wq_streams_iteration():
    wq = WorkingQueue()
    wq.insert(wq_entry("br:0", 0))
    wq.insert(wq_entry("br:1", 0))
    assert sorted(node for node, _ in wq.streams()) == ["br:0", "br:1"]


# ---------------------------------------------------------------------------
# WorkingTable
# ---------------------------------------------------------------------------
def test_wt_add_and_query():
    wt = WorkingTable()
    wt.add_child("c1", 5)
    assert wt.max_delivered("c1") == 5
    assert "c1" in wt and len(wt) == 1


def test_wt_record_never_lowers():
    wt = WorkingTable()
    wt.add_child("c1", 0)
    wt.record_delivered("c1", 5)
    wt.record_delivered("c1", 3)
    assert wt.max_delivered("c1") == 5


def test_wt_record_unknown_child_ignored():
    wt = WorkingTable()
    wt.record_delivered("ghost", 9)
    assert wt.max_delivered("ghost") is None


def test_wt_min_across_children():
    wt = WorkingTable()
    wt.add_child("a", 3)
    wt.add_child("b", 7)
    assert wt.min_delivered_across() == 3
    wt.record_delivered("a", 10)
    assert wt.min_delivered_across() == 7


def test_wt_min_across_empty_is_none():
    assert WorkingTable().min_delivered_across() is None


def test_wt_remove_child():
    wt = WorkingTable()
    wt.add_child("a", 0)
    wt.remove_child("a")
    assert "a" not in wt
    wt.remove_child("a")  # idempotent


def test_wt_children_sorted():
    wt = WorkingTable()
    wt.add_child("b", 0)
    wt.add_child("a", 0)
    assert wt.children == ["a", "b"]


# ---------------------------------------------------------------------------
# MQ pending index (incremental, no full-store sort)
# ---------------------------------------------------------------------------
def test_mq_pending_tracks_lifecycle():
    mq = MessageQueue()
    for seq in (0, 2, 1):
        mq.insert(bm(seq))
    assert mq.pending == 3
    mq.mark_delivered(0)
    mq.advance_front()
    assert mq.pending == 2
    mq.tombstone_lost(3)
    assert mq.pending == 2          # tombstones arrive pre-delivered
    mq.mark_delivered(1)
    mq.mark_delivered(2)
    mq.advance_front()
    assert mq.pending == 0
    assert mq.undelivered() == []


def test_mq_undelivered_matches_brute_force():
    import random

    rng = random.Random(3)
    mq = MessageQueue()
    for seq in rng.sample(range(200), 120):
        mq.insert(bm(seq))
    for seq in rng.sample(range(200), 150):
        if rng.random() < 0.5:
            mq.mark_delivered(seq)
        else:
            mq.tombstone_lost(seq)
    mq.advance_front()
    mq.prune(retention=5)
    brute = [m for s, m in sorted(mq._store.items()) if not m.delivered]
    assert mq.undelivered() == brute
    assert mq.pending == len(brute)


def test_mq_pending_survives_prune_and_anchor():
    mq = MessageQueue()
    for seq in range(10):
        mq.insert(bm(seq))
        mq.mark_delivered(seq)
    mq.advance_front()
    assert mq.prune(retention=0) == 10
    assert mq.pending == 0
    mq.anchor(start_seq=50)
    mq.insert(bm(50))
    assert mq.pending == 1


def test_mq_duplicate_insert_does_not_inflate_pending():
    mq = MessageQueue()
    assert mq.insert(bm(4))
    assert not mq.insert(bm(4))
    assert mq.pending == 1
