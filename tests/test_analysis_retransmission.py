"""Tests for the retransmission analysis (the paper's future work)."""

import pytest

from repro.analysis.retransmission import RetransmissionModel


def test_lossless_is_free():
    m = RetransmissionModel(loss_prob=0.0, rto=20.0, max_retries=5)
    assert m.delivery_probability == 1.0
    assert m.expected_attempts == 1.0
    assert m.expected_extra_latency == 0.0
    assert m.expected_retransmissions == 0.0


def test_delivery_probability_formula():
    m = RetransmissionModel(loss_prob=0.5, rto=20.0, max_retries=3)
    assert m.delivery_probability == pytest.approx(1 - 0.5 ** 4)


def test_zero_retries_delivery_is_one_shot():
    m = RetransmissionModel(loss_prob=0.3, rto=20.0, max_retries=0)
    assert m.delivery_probability == pytest.approx(0.7)
    assert m.expected_attempts == pytest.approx(1.0)


def test_expected_attempts_accounts_for_ack_loss():
    # Symmetric 10% loss: round-trip success 0.81; for large k the mean
    # attempts approach 1/0.81.
    m = RetransmissionModel(loss_prob=0.1, rto=20.0, max_retries=50)
    assert m.expected_attempts == pytest.approx(1 / 0.81, rel=1e-3)


def test_asymmetric_ack_loss():
    m = RetransmissionModel(loss_prob=0.2, rto=10.0, max_retries=10,
                            ack_loss_prob=0.0)
    assert m.round_trip_success == pytest.approx(0.8)
    # With perfect acks, attempts follow the data-loss geometric.
    assert m.expected_attempts == pytest.approx(
        (1 - 0.2 ** 11) / 0.8, rel=1e-6)


def test_extra_latency_monotone_in_loss():
    lats = [RetransmissionModel(p, 20.0, 5).expected_extra_latency
            for p in (0.05, 0.2, 0.5)]
    assert lats[0] < lats[1] < lats[2]


def test_max_extra_latency():
    m = RetransmissionModel(loss_prob=0.3, rto=25.0, max_retries=4)
    assert m.max_extra_latency == 100.0


def test_inflated_latency_bound_additive():
    m = RetransmissionModel(loss_prob=0.3, rto=10.0, max_retries=2)
    assert m.inflated_latency_bound(100.0, lossy_hops=3) == 100.0 + 3 * 20.0


def test_end_to_end_delivery_compounds():
    m = RetransmissionModel(loss_prob=0.5, rto=10.0, max_retries=1)
    per_hop = m.delivery_probability
    assert m.end_to_end_delivery_probability(3) == pytest.approx(per_hop ** 3)
    with pytest.raises(ValueError):
        m.end_to_end_delivery_probability(0)


def test_buffer_inflation_factor():
    m = RetransmissionModel(loss_prob=0.0, rto=10.0, max_retries=5)
    assert m.buffer_inflation_factor(10.0) == 1.0
    m2 = RetransmissionModel(loss_prob=0.5, rto=10.0, max_retries=5)
    assert m2.buffer_inflation_factor(10.0) > 1.5


def test_validation():
    with pytest.raises(ValueError):
        RetransmissionModel(loss_prob=1.0, rto=10.0, max_retries=1)
    with pytest.raises(ValueError):
        RetransmissionModel(loss_prob=0.1, rto=0.0, max_retries=1)
    with pytest.raises(ValueError):
        RetransmissionModel(loss_prob=0.1, rto=10.0, max_retries=-1)
    with pytest.raises(ValueError):
        RetransmissionModel(loss_prob=0.1, rto=10.0, max_retries=1,
                            ack_loss_prob=1.5)
    with pytest.raises(ValueError):
        RetransmissionModel(loss_prob=0.1, rto=10.0,
                            max_retries=1).buffer_inflation_factor(0.0)


def test_rows_shape():
    row = RetransmissionModel(0.2, 20.0, 3).rows()
    assert {"p", "retries", "P(deliver)", "E[attempts]",
            "E[extra] (ms)", "max extra (ms)"} == set(row)
