"""FaultPlan/FaultAction data layer: validation, round-trips, CLI."""

import json

import pytest

from repro.experiments import registry
from repro.experiments.spec import ExperimentSpec
from repro.faults import __main__ as faults_cli
from repro.faults.plan import (Degrade, FaultAction, FaultPlan, Flap,
                               LossBurst, Partition, selector_matches)


# ----------------------------------------------------------------------
# Selectors
# ----------------------------------------------------------------------
def test_selector_exact_and_glob():
    assert selector_matches("br:0", "br:0")
    assert not selector_matches("br:0", "br:1")
    assert selector_matches("ap:0.*", "ap:0.1.2")
    assert not selector_matches("ap:0.*", "ap:1.0.0")
    assert selector_matches("mh:*", "mh:2.1.0.0")


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_partition_validation():
    with pytest.raises(ValueError, match="two groups"):
        Partition(at_ms=1.0, groups=[["br:0"]])
    with pytest.raises(ValueError, match="heal_at_ms"):
        Partition(at_ms=10.0, heal_at_ms=5.0,
                  groups=[["br:0"], ["@rest"]])
    with pytest.raises(ValueError, match="one-way"):
        Partition(at_ms=1.0, direction="a_to_b",
                  groups=[["br:0"], ["br:1"], ["br:2"]])
    with pytest.raises(ValueError, match="direction"):
        Partition(at_ms=1.0, direction="sideways",
                  groups=[["br:0"], ["@rest"]])
    with pytest.raises(ValueError, match="at most one group"):
        Partition(at_ms=1.0, groups=[["@rest"], ["@rest"]])


def test_degrade_validation():
    with pytest.raises(ValueError, match="latency_factor"):
        Degrade(at_ms=1.0, until_ms=2.0, links=[["a", "b"]],
                latency_factor=0.5)
    with pytest.raises(ValueError, match="override"):
        Degrade(at_ms=1.0, until_ms=2.0, links=[["a", "b"]])
    with pytest.raises(ValueError, match="until_ms"):
        Degrade(at_ms=5.0, until_ms=5.0, links=[["a", "b"]], loss=0.1)
    with pytest.raises(ValueError, match="pairs"):
        Degrade(at_ms=1.0, until_ms=2.0, links=[["a", "b", "c"]], loss=0.1)


def test_flap_validation_and_phase():
    with pytest.raises(ValueError, match="duty"):
        Flap(at_ms=0.0, until_ms=10.0, link=["a", "b"], duty=1.0)
    f = Flap(at_ms=100.0, until_ms=900.0, link=["a", "b"],
             period_ms=100.0, duty=0.5)
    assert f.is_up(100.0) and f.is_up(149.9)
    assert not f.is_up(150.0) and not f.is_up(199.9)
    assert f.is_up(200.0)  # next period


def test_loss_burst_validation_and_stationary():
    with pytest.raises(ValueError, match="p_gb"):
        LossBurst(at_ms=0.0, until_ms=1.0, links=[["a", "b"]], p_gb=0.0)
    b = LossBurst(at_ms=0.0, until_ms=1.0, links=[["a", "b"]],
                  p_gb=0.05, p_bg=0.25, loss_good=0.0, loss_bad=0.9)
    assert b.stationary_loss == pytest.approx((0.05 / 0.30) * 0.9)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault action kind"):
        FaultAction.from_dict({"kind": "meteor", "at_ms": 1.0})
    with pytest.raises(ValueError, match="unknown Partition keys"):
        FaultAction.from_dict({"kind": "partition", "at_ms": 1.0,
                               "groups": [["a"], ["b"]], "wat": 1})


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
def _sample_plan() -> FaultPlan:
    return FaultPlan(actions=[
        Partition(at_ms=100.0, heal_at_ms=300.0,
                  groups=[["@token_holder_subtree"], ["@rest"]]),
        Degrade(at_ms=50.0, until_ms=400.0, links=[["br:*", "br:*"]],
                loss=0.1, latency_factor=2.0),
        Flap(at_ms=10.0, until_ms=200.0, link=["br:0", "br:1"],
             period_ms=40.0, duty=0.6),
        LossBurst(at_ms=20.0, until_ms=220.0, links=[["ap:*", "mh:*"]],
                  p_gb=0.04, p_bg=0.3, loss_bad=0.8),
    ])


def test_plan_json_roundtrip():
    plan = _sample_plan()
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.to_dict() == plan.to_dict()


def test_plan_span_and_describe():
    plan = _sample_plan()
    assert plan.span() == (10.0, 400.0)
    assert FaultPlan().span() is None
    unhealed = FaultPlan(actions=[
        Partition(at_ms=5.0, groups=[["br:0"], ["@rest"]])])
    assert unhealed.span() == (5.0, None)
    lines = plan.describe()
    assert len(lines) == 4
    assert "flap" in lines[0]  # sorted by activation time


def test_spec_with_faults_roundtrips():
    spec = ExperimentSpec(name="x", faults=_sample_plan())
    again = ExperimentSpec.from_json(spec.to_json())
    assert again == spec
    assert again.faults.actions[0].kind == "partition"


def test_spec_with_overrides_reaches_fault_fields():
    spec = ExperimentSpec(name="x", faults=_sample_plan())
    bumped = spec.with_overrides({"faults.actions.0.heal_at_ms": 500.0})
    assert bumped.faults.actions[0].heal_at_ms == 500.0
    assert spec.faults.actions[0].heal_at_ms == 300.0  # original intact


def test_registry_scenarios_with_plans_roundtrip():
    names = [n for n in registry.names()
             if registry.entry(n).factory().faults]
    assert set(names) >= {"split_brain", "asymmetric_partition",
                          "flapping_backbone", "gilbert_elliott_access",
                          "degraded_wan", "partition_during_handoff_storm",
                          "rolling_ap_brownout"}
    for name in names:
        spec = registry.get(name)
        assert ExperimentSpec.from_json(spec.to_json()) == spec


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list_names_fault_scenarios(capsys):
    assert faults_cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "split_brain" in out and "rolling_ap_brownout" in out


def test_cli_show_timeline_and_json(capsys):
    assert faults_cli.main(["show", "split_brain"]) == 0
    out = capsys.readouterr().out
    assert "partition" in out and "@token_holder_subtree" in out
    assert faults_cli.main(["show", "split_brain", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["actions"][0]["kind"] == "partition"


def test_cli_show_empty_plan(capsys):
    assert faults_cli.main(["show", "quickstart"]) == 0
    assert "empty fault plan" in capsys.readouterr().out


def test_cli_validate_file(tmp_path, capsys):
    good = tmp_path / "plan.json"
    good.write_text(_sample_plan().to_json())
    assert faults_cli.main(["validate", str(good)]) == 0
    assert "4 action(s)" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(
        {"actions": [{"kind": "partition", "at_ms": 1.0,
                      "groups": [["a"]]}]}))
    assert faults_cli.main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_describe_keeps_plan_indices():
    """Timeline lines lead with the plan index the trace records use,
    even when display order is sorted by activation time."""
    plan = FaultPlan(actions=[
        Degrade(at_ms=2_000.0, until_ms=3_000.0, links=[["a", "b"]],
                loss=0.1),
        Partition(at_ms=1_000.0, heal_at_ms=1_500.0,
                  groups=[["a"], ["@rest"]]),
    ])
    lines = plan.describe()
    assert lines[0].lstrip().startswith("1.") and "partition" in lines[0]
    assert lines[1].lstrip().startswith("0.") and "degrade" in lines[1]


def test_cli_show_unknown_scenario_is_a_clean_error(capsys):
    assert faults_cli.main(["show", "no_such_scenario"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "no_such_scenario" in err
