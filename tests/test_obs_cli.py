"""CLI smoke tests: ``python -m repro.obs`` and the ``--obs`` flags of
the bench / experiments / shard entry points, exercised in-process."""

import glob
import json
import os

import pytest

from repro.bench.__main__ import main as bench_main
from repro.experiments import registry
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.runner import build_scenario
from repro.obs.__main__ import main as obs_main
from repro.obs.session import ObsSession
from repro.shard.__main__ import main as shard_main
from repro.sim.engine import Simulator


@pytest.fixture()
def artifacts(tmp_path):
    """One small observed run, written to tmp: (report_path, timeline)."""
    spec = registry.get("quickstart", duration_ms=1200.0, warmup_ms=0.0)
    sim = Simulator(seed=spec.seed)
    scenario = build_scenario(spec, sim=sim)
    session = ObsSession(sim, horizon_ms=spec.duration_ms, name="clismoke")
    scenario.run()
    session.finish()
    paths = session.write(out_dir=str(tmp_path))
    return paths


# ----------------------------------------------------------------------
# python -m repro.obs
# ----------------------------------------------------------------------
def test_obs_summarize(artifacts, capsys):
    assert obs_main(["summarize", artifacts["report"]]) == 0
    out = capsys.readouterr().out
    assert "clismoke" in out
    assert "token.holds" in out


def test_obs_top(artifacts, capsys):
    assert obs_main(["top", artifacts["report"]]) == 0
    out = capsys.readouterr().out
    assert "Fabric._arrive" in out
    assert "share" in out


def test_obs_timeline(artifacts, capsys):
    assert obs_main(["timeline", artifacts["timeline"]]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    # One line per window plus the header block.
    report = json.load(open(artifacts["report"], encoding="utf-8"))
    assert len(out.strip().splitlines()) >= report["windows"]


def test_obs_missing_file_exits_2(tmp_path, capsys):
    missing = os.path.join(str(tmp_path), "OBS_nope.json")
    assert obs_main(["summarize", missing]) == 2
    assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --obs flags of the other CLIs
# ----------------------------------------------------------------------
def test_bench_run_obs(tmp_path, capsys):
    out = str(tmp_path / "BENCH_quickstart.json")
    rc = bench_main(["run", "quickstart", "--duration", "800",
                     "--obs", str(tmp_path), "--out", out])
    assert rc == 0
    assert os.path.exists(out)
    obs_files = glob.glob(str(tmp_path / "OBS_quickstart.json"))
    assert obs_files, "bench --obs wrote no OBS report"
    report = json.load(open(obs_files[0], encoding="utf-8"))
    assert report["events"] > 0
    assert report["registry"]["counters"]["token.holds"] > 0


def test_experiments_run_obs(tmp_path):
    cwd = os.getcwd()
    os.chdir(str(tmp_path))
    try:
        rc = experiments_main(["run", "quickstart", "--duration", "800",
                               "--quiet", "--obs", str(tmp_path)])
    finally:
        os.chdir(cwd)
    assert rc == 0
    obs_files = glob.glob(str(tmp_path / "OBS_quickstart*p0r0.json"))
    assert obs_files, "experiments --obs wrote no OBS report"


def test_shard_run_obs(tmp_path, capsys):
    rc = shard_main(["run", "quickstart", "--shards", "2",
                     "--duration", "1200", "--obs", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per shard:" in out
    assert "export_q_peak" in out
    obs_files = glob.glob(str(tmp_path / "OBS_quickstart@2shards.json"))
    assert obs_files, "shard --obs wrote no OBS report"
    report = json.load(open(obs_files[0], encoding="utf-8"))
    assert report["n_shards"] == 2
    # The sharded report renders through the same CLI.
    assert obs_main(["summarize", obs_files[0]]) == 0
    assert obs_main(["top", obs_files[0]]) == 0


def test_bench_progress_flag(tmp_path, capsys):
    out = str(tmp_path / "BENCH_p.json")
    rc = bench_main(["run", "quickstart", "--duration", "600",
                     "--progress", "--out", out])
    assert rc == 0
    assert os.path.exists(out)
