"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.sim.timers import PeriodicTimer, Timer


def test_timer_fires_once(sim):
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.start(3.0)
    sim.run()
    assert fired == [3.0]


def test_timer_restart_resets_deadline(sim):
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.start(3.0)
    sim.schedule(2.0, lambda: t.start(5.0))  # restart at t=2 -> fires at 7
    sim.run()
    assert fired == [7.0]


def test_timer_stop_prevents_fire(sim):
    fired = []
    t = Timer(sim, lambda: fired.append(1))
    t.start(3.0)
    t.stop()
    sim.run()
    assert fired == []


def test_timer_stop_idempotent(sim):
    t = Timer(sim, lambda: None)
    t.stop()
    t.stop()  # must not raise


def test_timer_armed_property(sim):
    t = Timer(sim, lambda: None)
    assert not t.armed
    t.start(1.0)
    assert t.armed
    sim.run()
    assert not t.armed


def test_timer_passes_args(sim):
    got = []
    t = Timer(sim, lambda a, b: got.append((a, b)), 1, 2)
    t.start(1.0)
    sim.run()
    assert got == [(1, 2)]


def test_periodic_fires_every_period(sim):
    fired = []
    p = PeriodicTimer(sim, 2.0, lambda: fired.append(sim.now))
    p.start()
    sim.run(until=7.0)
    assert fired == [2.0, 4.0, 6.0]
    assert p.fires == 3


def test_periodic_phase_offset(sim):
    fired = []
    p = PeriodicTimer(sim, 2.0, lambda: fired.append(sim.now), phase=1.0)
    p.start()
    sim.run(until=6.0)
    assert fired == [3.0, 5.0]


def test_periodic_stop_ends_ticking(sim):
    fired = []
    p = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
    p.start()
    sim.schedule(2.5, p.stop)
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]


def test_periodic_callback_may_stop_itself(sim):
    fired = []

    def cb():
        fired.append(sim.now)
        if len(fired) == 2:
            p.stop()

    p = PeriodicTimer(sim, 1.0, cb)
    p.start()
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]


def test_periodic_start_idempotent(sim):
    fired = []
    p = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
    p.start()
    p.start()  # must not double-schedule
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]


def test_periodic_invalid_period_rejected(sim):
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)
