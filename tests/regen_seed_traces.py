"""Regenerate the golden traces under ``tests/data/seed_traces/``.

Run only after an *intentional* behaviour change (a protocol fix, a new
trace field) — never to make an optimization "pass".  Usage::

    PYTHONPATH=src python tests/regen_seed_traces.py

Recording parameters live in ``tests/test_trace_identity.py`` so the
regenerator and the checker can never drift apart.
"""

import gzip
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from test_trace_identity import TRACE_DIR, record  # noqa: E402

from repro.experiments import registry  # noqa: E402


def main() -> int:
    os.makedirs(TRACE_DIR, exist_ok=True)
    for name in registry.names():
        rec = record(name)
        path = os.path.join(TRACE_DIR, f"{name}.jsonl.gz")
        # mtime=0 keeps the archives byte-stable across regenerations.
        with gzip.GzipFile(path, "wb", mtime=0) as fh:
            fh.write(rec.to_jsonl().encode("utf-8"))
        print(f"{name}: {rec.count} records -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
