"""Unit tests for the PartitionRecoveryMonitor (synthetic streams)."""

from repro.sim.trace import TraceBus
from repro.validation.monitors import PartitionRecoveryMonitor
from repro.validation.suite import standard_suite

WINDOW = 1_000.0


def _monitor():
    bus = TraceBus()
    mon = PartitionRecoveryMonitor(recovery_window_ms=WINDOW)
    mon.attach(bus)
    return bus, mon


def _partition(bus, index=0, t=100.0, heal_at=300.0):
    bus.emit(t, "fault.partition", index=index, direction="both",
             group_sizes=[3, 5], heal_at=heal_at)


def test_quiet_without_partitions():
    bus, mon = _monitor()
    bus.emit(1.0, "mh.deliver", mh="mh:x", gseq=0)
    mon.finish(end_time=10_000.0)
    assert mon.ok
    assert mon.report()["partitions"] == 0


def test_healed_partition_with_resumed_delivery_is_clean():
    bus, mon = _monitor()
    bus.emit(50.0, "token.hold", node="br:0", next_gseq=0)
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(400.0, "token.hold", node="br:1", next_gseq=1)
    bus.emit(450.0, "mh.deliver", mh="mh:x", gseq=1)
    bus.emit(5_000.0, "source.send", source="src:0")
    mon.finish(end_time=6_000.0)
    assert mon.ok, mon.violations
    assert mon.report() == {"monitor": "partition_recovery",
                            "partitions": 1, "heals": 1, "violations": 0}


def test_partition_that_never_heals_is_flagged():
    bus, mon = _monitor()
    _partition(bus, heal_at=300.0)  # no fault.heal follows
    mon.finish(end_time=6_000.0)
    assert not mon.ok
    assert "never healed" in mon.violations[0]


def test_unbounded_partition_is_not_expected_to_heal():
    bus, mon = _monitor()
    bus.emit(100.0, "fault.partition", index=0, direction="both",
             group_sizes=[3, 5], heal_at=None)
    mon.finish(end_time=6_000.0)
    assert mon.ok


def test_stalled_delivery_after_heal_is_flagged():
    bus, mon = _monitor()
    bus.emit(10.0, "mh.deliver", mh="mh:x", gseq=0)
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(5_000.0, "source.send", source="src:0")  # sources keep going
    mon.finish(end_time=6_000.0)  # ...but nothing was ever delivered
    assert any("deliveries did not resume" in v for v in mon.violations)


def test_stalled_token_after_heal_is_flagged():
    bus, mon = _monitor()
    bus.emit(50.0, "token.hold", node="br:0", next_gseq=0)
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(450.0, "mh.deliver", mh="mh:x", gseq=1)
    bus.emit(5_000.0, "source.send", source="src:0")
    mon.finish(end_time=6_000.0)
    assert any("token did not resume" in v for v in mon.violations)


def test_token_check_disarmed_when_never_rotating():
    """No token.hold before the partition (e.g. unordered system)."""
    bus, mon = _monitor()
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(450.0, "mh.deliver", mh="mh:x", gseq=1)
    bus.emit(5_000.0, "source.send", source="src:0")
    mon.finish(end_time=6_000.0)
    assert mon.ok, mon.violations


def test_run_ending_inside_recovery_window_is_not_judged():
    bus, mon = _monitor()
    bus.emit(50.0, "token.hold", node="br:0", next_gseq=0)
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(900.0, "source.send", source="src:0")
    mon.finish(end_time=300.0 + WINDOW / 2)
    assert mon.ok


def test_wedged_join_after_heal_is_flagged():
    bus, mon = _monitor()
    bus.emit(50.0, "mh.join", mh="mh:w", ap="ap:0")
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(400.0, "mh.deliver", mh="mh:other", gseq=1)
    bus.emit(5_000.0, "source.send", source="src:0")
    mon.finish(end_time=6_000.0)
    assert any("membership did not re-converge" in v and "mh:w" in v
               for v in mon.violations)


def test_join_confirmed_by_member_or_delivery_is_clean():
    bus, mon = _monitor()
    bus.emit(50.0, "mh.join", mh="mh:a", ap="ap:0")
    bus.emit(60.0, "mh.join", mh="mh:b", ap="ap:0")
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(350.0, "mh.member", mh="mh:a", base=-1)
    bus.emit(400.0, "mh.deliver", mh="mh:b", gseq=1)  # as good as member
    bus.emit(5_000.0, "source.send", source="src:0")
    mon.finish(end_time=6_000.0)
    assert mon.ok, mon.violations


def test_leave_clears_pending_join():
    bus, mon = _monitor()
    bus.emit(50.0, "mh.join", mh="mh:a", ap="ap:0")
    _partition(bus)
    bus.emit(300.0, "fault.heal", index=0)
    bus.emit(310.0, "mh.leave", mh="mh:a")
    bus.emit(400.0, "mh.deliver", mh="mh:x", gseq=1)
    bus.emit(5_000.0, "source.send", source="src:0")
    mon.finish(end_time=6_000.0)
    assert mon.ok, mon.violations


def test_standard_suite_includes_partition_recovery():
    for system in ("ringnet", "single_ring", "unordered"):
        suite = standard_suite(system)
        assert any(m.name == "partition_recovery" for m in suite)
