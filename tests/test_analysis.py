"""Tests for Theorem 5.1 bound computation and comparison rows."""

import pytest

from repro.analysis.bounds import TheoremBounds, bounds_for, ring_hop_ms
from repro.analysis.compare import bound_check_row, theorem_rows
from repro.core.config import ProtocolConfig
from repro.net.link import WIRED, WIRELESS, LinkSpec


def test_ring_hop_worst_case():
    assert ring_hop_ms(LinkSpec(latency=2.0, jitter=0.5)) == 2.5


def test_bounds_scale_with_ring_size():
    cfg = ProtocolConfig()
    b4 = bounds_for(cfg, ring_size=4, n_sources=1, rate_per_sec=10,
                    wired=WIRED, wireless=WIRELESS)
    b8 = bounds_for(cfg, ring_size=8, n_sources=1, rate_per_sec=10,
                    wired=WIRED, wireless=WIRELESS)
    assert b8.t_order == 2 * b4.t_order
    assert b8.t_transmit == 2 * b4.t_transmit
    assert b8.latency_bound_ms > b4.latency_bound_ms


def test_latency_bound_formula():
    b = TheoremBounds(t_order=10.0, t_transmit=8.0, t_deliver=5.0, tau=2.0,
                      rate_per_ms=0.1)
    assert b.latency_bound_ms == 10.0 + 2.0 + 5.0
    assert b.ordering_bound_ms == 12.0


def test_buffer_bounds_formulas():
    b = TheoremBounds(t_order=10.0, t_transmit=20.0, t_deliver=5.0, tau=5.0,
                      rate_per_ms=0.2)
    # WQ: s*λ*(max(To,Tt)+τ) = 0.2 * 25
    assert b.wq_bound_msgs == pytest.approx(5.0)
    # MQ: s*λ*To = 0.2 * 10
    assert b.mq_bound_msgs == pytest.approx(2.0)


def test_throughput_is_s_lambda():
    cfg = ProtocolConfig()
    b = bounds_for(cfg, ring_size=4, n_sources=3, rate_per_sec=20,
                   wired=WIRED, wireless=WIRELESS)
    assert b.throughput_msgs_per_sec == pytest.approx(60.0)


def test_bounds_grow_with_sources_and_rate():
    cfg = ProtocolConfig()
    b1 = bounds_for(cfg, 4, 1, 10, WIRED, WIRELESS)
    b2 = bounds_for(cfg, 4, 2, 10, WIRED, WIRELESS)
    b3 = bounds_for(cfg, 4, 1, 20, WIRED, WIRELESS)
    assert b2.wq_bound_msgs == pytest.approx(2 * b1.wq_bound_msgs)
    assert b3.wq_bound_msgs == pytest.approx(2 * b1.wq_bound_msgs)
    # Latency bound does not depend on rate.
    assert b1.latency_bound_ms == b2.latency_bound_ms == b3.latency_bound_ms


def test_tau_increases_latency_and_wq_bounds_only():
    b_small = bounds_for(ProtocolConfig(tau=1.0), 4, 1, 10, WIRED, WIRELESS)
    b_large = bounds_for(ProtocolConfig(tau=20.0), 4, 1, 10, WIRED, WIRELESS)
    assert b_large.latency_bound_ms - b_small.latency_bound_ms == pytest.approx(19.0)
    assert b_large.mq_bound_msgs == b_small.mq_bound_msgs


def test_invalid_ring_size():
    with pytest.raises(ValueError):
        bounds_for(ProtocolConfig(), 0, 1, 10, WIRED, WIRELESS)


def test_bound_check_row_pass_fail():
    ok = bound_check_row("x", bound=10.0, measured=9.0)
    bad = bound_check_row("x", bound=10.0, measured=11.0)
    assert ok["holds"] == "yes" and bad["holds"] == "NO"
    loose = bound_check_row("x", bound=10.0, measured=11.0, within_factor=1.2)
    assert loose["holds"] == "yes"


def test_theorem_rows_complete():
    b = TheoremBounds(t_order=10.0, t_transmit=8.0, t_deliver=5.0, tau=2.0,
                      rate_per_ms=0.1)
    rows = theorem_rows(b, measured_latency_max=12.0, measured_wq_peak=1.0,
                        measured_mq_peak=0.5,
                        measured_throughput=100.0)
    assert [r["quantity"] for r in rows] == [
        "latency_max", "wq_peak", "mq_peak", "throughput"]
    assert all(r["holds"] == "yes" for r in rows)


def test_theorem_rows_throughput_tolerance():
    b = TheoremBounds(t_order=1, t_transmit=1, t_deliver=1, tau=1,
                      rate_per_ms=0.1)  # 100 msg/s
    rows = theorem_rows(b, 0, 0, 0, measured_throughput=90.0)
    assert rows[-1]["holds"] == "NO"  # 10% off
    rows = theorem_rows(b, 0, 0, 0, measured_throughput=97.0)
    assert rows[-1]["holds"] == "yes"  # within 5%
