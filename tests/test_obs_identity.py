"""Out-of-band guarantees of repro.obs.

Two properties hold the observability subsystem to its contract:

1. **Zero-callback when disabled** — a run without an attached
   :class:`~repro.obs.session.ObsSession` executes not one registry
   entry point (every instrumented call site null-checks ``sim.obs``
   first), so observability costs nothing when off.
2. **Trace identity when enabled** — attaching a session must not move
   a single simulated event: the canonical JSONL stream of an observed
   run is byte-identical to the unobserved stream, sequentially and on
   the space-parallel backend at 2 and 4 shards.
"""

import pytest

from repro.experiments import registry
from repro.experiments.runner import build_scenario
from repro.obs import registry as obs_registry
from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.session import ObsSession
from repro.shard.runtime import run_sharded
from repro.sim.engine import Simulator
from repro.validation.record import (TraceRecorder, first_divergence,
                                     record_spec)

#: Scenario × horizon matrix for the identity sweep.  Horizons are
#: short for suite speed; identity is compared between two recordings
#: of the *same* spec, so truncation cannot mask a divergence.
SCENARIOS = {
    "quickstart": 1500.0,
    "churn_heavy": 1500.0,
    "degraded_wan": 1500.0,
}


def spec_of(name: str):
    spec = registry.get(name)
    overrides = {"duration_ms": SCENARIOS[name]}
    if spec.warmup_ms >= SCENARIOS[name]:
        overrides["warmup_ms"] = 0.0
    return spec.with_overrides(overrides)


_base_cache = {}


def base_lines(name: str):
    if name not in _base_cache:
        _base_cache[name] = record_spec(spec_of(name)).lines
    return _base_cache[name]


# ----------------------------------------------------------------------
# Property 1: disabled runs execute zero registry callbacks
# ----------------------------------------------------------------------
def test_disabled_run_executes_zero_registry_callbacks(monkeypatch):
    calls = []

    def spy(method_name, orig):
        def wrapper(self, *a, **kw):
            calls.append(method_name)
            return orig(self, *a, **kw)
        return wrapper

    for cls in (MetricsRegistry, Counter, Gauge, Histogram):
        for attr in ("inc", "set_gauge", "gauge_max", "observe",
                     "counter", "gauge", "hist", "set", "update_max"):
            orig = cls.__dict__.get(attr)
            if orig is not None:
                monkeypatch.setattr(cls, attr,
                                    spy(f"{cls.__name__}.{attr}", orig))

    spec = spec_of("quickstart")
    sim = Simulator(seed=spec.seed)
    scenario = build_scenario(spec, sim=sim)
    scenario.run()
    assert sim.events_processed > 0
    assert calls == [], f"registry callbacks on a disabled run: {calls[:5]}"


def test_enabled_run_executes_registry_callbacks(monkeypatch):
    """The spy harness itself is live: an attached session must count."""
    calls = []
    orig = MetricsRegistry.inc

    def spy(self, *a, **kw):
        calls.append("inc")
        return orig(self, *a, **kw)

    monkeypatch.setattr(MetricsRegistry, "inc", spy)
    spec = spec_of("quickstart")
    sim = Simulator(seed=spec.seed)
    scenario = build_scenario(spec, sim=sim)
    session = ObsSession(sim, horizon_ms=spec.duration_ms)
    scenario.run()
    session.finish()
    assert calls, "no registry callbacks despite an attached session"


def test_obs_module_never_emits_or_schedules():
    """Static guard: obs code never calls onto the trace bus or the
    event heap (AST-level, so docstrings don't false-positive)."""
    import ast
    import inspect
    import repro.obs.critpath
    import repro.obs.profiler
    import repro.obs.session
    import repro.obs.spans
    forbidden = {"emit", "schedule", "schedule_at", "timer"}
    for mod in (obs_registry, repro.obs.profiler, repro.obs.session,
                repro.obs.spans, repro.obs.critpath):
        tree = ast.parse(inspect.getsource(mod))
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                assert node.func.attr not in forbidden, \
                    f"{mod.__name__}:{node.lineno} calls .{node.func.attr}()"


# ----------------------------------------------------------------------
# Property 2: enabled runs are trace-identical, sequential and sharded
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_sequential_identity_obs_on_vs_off(name):
    spec = spec_of(name)
    sim = Simulator(seed=spec.seed)
    rec = TraceRecorder(sim.trace)
    scenario = build_scenario(spec, sim=sim)
    session = ObsSession(sim, horizon_ms=spec.duration_ms, name=name)
    scenario.run()
    session.finish()
    div = first_divergence(base_lines(name), rec.lines)
    assert div is None, f"{name}: obs-enabled run diverged at " \
                        f"{div.describe()}"
    assert session.report()["events"] > 0


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_sharded_identity_obs_on_vs_off(name, shards):
    spec = spec_of(name)
    result = run_sharded(spec, shards, record=True, obs=True)
    div = first_divergence(base_lines(name), result.merged_lines or [])
    assert div is None, f"{name}@{shards}: obs-enabled sharded run " \
                        f"diverged at {div.describe()}"
    report = result.obs_report
    assert report is not None
    assert report["n_shards"] == shards
    assert len(report["shards"]) == shards
    # Per-shard event totals roll up to the run total.
    assert sum(s["events"] for s in report["shards"]) == report["events"]
    # Every shard sub-report carries the window-stall observability.
    for sub in report["shards"]:
        assert "shard_windows" in sub
        assert "stalls" in sub["shard_windows"]
