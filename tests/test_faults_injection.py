"""Fabric-level fault injection: overlay verdicts and driver plumbing."""

import pytest

from conftest import Ping, Recorder

from repro.experiments import registry
from repro.experiments.runner import build_scenario
from repro.faults.driver import FaultDriver, structural_home, subtree_nodes
from repro.faults.overlay import FaultOverlay, _BurstEntry
from repro.faults.plan import Flap
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec
from repro.sim.engine import Simulator


FAST = LinkSpec(latency=1.0)


def _mesh(sim, names):
    fabric = Fabric(sim, default_spec=FAST)
    nodes = {n: Recorder(fabric, n) for n in names}
    return fabric, nodes


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_blocks_cross_group_only(sim):
    fabric, nodes = _mesh(sim, ["a1", "a2", "b1", "x"])
    ov = FaultOverlay(sim)
    fabric.fault_overlay = ov
    ov.install_partition(0, (frozenset({"a1", "a2"}), frozenset({"b1"})),
                         "both")
    nodes["a1"].send("b1", Ping(1))   # cross: dropped
    nodes["b1"].send("a2", Ping(2))   # cross: dropped
    nodes["a1"].send("a2", Ping(3))   # intra: flows
    nodes["a1"].send("x", Ping(4))    # x in no group: unaffected
    nodes["x"].send("b1", Ping(5))    # unaffected
    sim.run()
    assert [m.n for m in nodes["b1"].received] == [5]
    assert [m.n for m in nodes["a2"].received] == [3]
    assert [m.n for m in nodes["x"].received] == [4]
    assert ov.drops_by_action == {0: 2}


def test_one_way_partition_drops_single_direction(sim):
    fabric, nodes = _mesh(sim, ["a", "b"])
    ov = FaultOverlay(sim)
    fabric.fault_overlay = ov
    ov.install_partition(0, (frozenset({"a"}), frozenset({"b"})), "a_to_b")
    nodes["a"].send("b", Ping(1))  # dropped
    nodes["b"].send("a", Ping(2))  # flows
    sim.run()
    assert nodes["b"].received == []
    assert [m.n for m in nodes["a"].received] == [2]


def test_partition_heal_restores_traffic(sim):
    fabric, nodes = _mesh(sim, ["a", "b"])
    ov = FaultOverlay(sim)
    fabric.fault_overlay = ov
    ov.install_partition(0, (frozenset({"a"}), frozenset({"b"})), "both")
    nodes["a"].send("b", Ping(1))
    ov.remove(0)
    assert not ov.active
    nodes["a"].send("b", Ping(2))
    sim.run()
    assert [m.n for m in nodes["b"].received] == [2]
    with pytest.raises(KeyError):
        ov.remove(0)


# ----------------------------------------------------------------------
# Degradation
# ----------------------------------------------------------------------
def test_degrade_latency_factor_slows_matching_links(sim):
    fabric, nodes = _mesh(sim, ["a", "b", "c"])
    ov = FaultOverlay(sim)
    fabric.fault_overlay = ov
    ov.install_degrade(0, [["a", "b"]], None, 4.0)
    nodes["a"].send("b", Ping(1))   # 1 ms * 4
    nodes["a"].send("c", Ping(2))   # unmatched: 1 ms
    arrivals = {}
    run_until = 10.0
    sim.run(until=run_until)
    # Arrival order proves the delay: c's message lands first.
    assert nodes["c"].received and nodes["b"].received
    assert nodes["b"].received[0].sent_at == 0.0
    # Re-measure precisely with fresh sends at a known time.
    t0 = sim.now
    nodes["a"].send("b", Ping(3))
    sim.run(until=t0 + 3.9)
    assert len(nodes["b"].received) == 1     # 4 ms not yet elapsed
    sim.run(until=t0 + 4.1)
    assert len(nodes["b"].received) == 2


def test_degrade_loss_override_replaces_spec_loss(sim):
    fabric, nodes = _mesh(sim, ["a", "b"])
    ov = FaultOverlay(sim)
    fabric.fault_overlay = ov
    ov.install_degrade(0, [["a", "b"]], 1.0, 1.0)  # certain loss
    for i in range(5):
        nodes["a"].send("b", Ping(i))
    sim.run()
    assert nodes["b"].received == []
    ov.remove(0)
    nodes["a"].send("b", Ping(9))
    sim.run()
    assert [m.n for m in nodes["b"].received] == [9]


# ----------------------------------------------------------------------
# Flapping
# ----------------------------------------------------------------------
def test_flap_drops_only_in_down_phase(sim):
    fabric, nodes = _mesh(sim, ["a", "b"])
    ov = FaultOverlay(sim)
    fabric.fault_overlay = ov
    flap = Flap(at_ms=0.0, until_ms=1_000.0, link=["a", "b"],
                period_ms=100.0, duty=0.5)
    ov.install_flap(0, flap)
    # Send one message every 10 ms; those sent in [0,50) of each period
    # pass, those in [50,100) drop.
    for k in range(20):
        sim.schedule_at(k * 10.0, nodes["a"].send, "b", Ping(k))
    sim.run()
    got = sorted(m.n for m in nodes["b"].received)
    assert got == [k for k in range(20) if (k * 10.0) % 100.0 < 50.0]


# ----------------------------------------------------------------------
# Correlated loss (overlay side; model properties live elsewhere)
# ----------------------------------------------------------------------
def test_burst_chain_is_per_sender(sim):
    """Interleaving another sender must not change a sender's draws."""
    def drop_pattern(extra_sender: bool):
        s = Simulator(seed=99)
        fabric, nodes = _mesh(s, ["a", "b", "sink"])
        ov = FaultOverlay(s)
        fabric.fault_overlay = ov
        ov.install_burst(0, _BurstEntry([["*", "sink"]],
                                        p_gb=0.3, p_bg=0.3,
                                        loss_good=0.1, loss_bad=0.9))
        for i in range(200):
            nodes["a"].send("sink", Ping(i))
            if extra_sender:
                nodes["b"].send("sink", Ping(1000 + i))
        s.run()
        # Same-timestamp arrival *order* legitimately depends on causal
        # keys; the drop *decisions* (which transmissions survive) are
        # the per-sender-determinism claim.
        return sorted(m.n for m in nodes["sink"].received if m.n < 1000)

    assert drop_pattern(False) == drop_pattern(True)


# ----------------------------------------------------------------------
# Driver: resolution, trace records, expiry
# ----------------------------------------------------------------------
def test_structural_home_convention():
    assert structural_home("mh:0.1.0.3") == "ap:0.1.0"
    assert structural_home("mh:0.0.1.2.0.1") == "ap:0.0.1.2.0"
    assert structural_home("churn-mh:4") is None
    assert structural_home("br:0") is None


def test_split_brain_resolves_token_holder_subtree():
    spec = registry.get("split_brain")
    scenario = build_scenario(spec)
    records = []
    scenario.sim.trace.subscribe("fault.partition",
                                 lambda r: records.append(r))
    scenario.run(until=1_100.0)  # past activation, before heal
    ov = scenario.net.fabric.fault_overlay
    assert records and records[0]["heal_at"] == 1_250.0
    groups, direction = ov._partitions[0]
    assert direction == "both"
    # The isolated group is one BR's whole subtree: its BR, both AGs,
    # all four APs, their MHs, and any source feeding that BR.
    iso = groups[0]
    brs = sorted(n for n in iso if n.startswith("br:"))
    assert len(brs) == 1
    b = brs[0].split(":")[1]
    assert all(n.split(":")[1].startswith(b) for n in iso
               if n.split(":")[0] in ("ag", "ap", "mh"))
    assert sum(1 for n in iso if n.startswith("ag:")) == 2
    assert sum(1 for n in iso if n.startswith("ap:")) == 4
    # The holder BR holds the token right now.
    holder = scenario.net.nes[brs[0]]
    # Note: the token moves on; at resolution time it was held here.
    # Instead assert via hierarchy: iso BR is a top-ring member.
    assert brs[0] in scenario.net.hierarchy.top_ring.members
    # Group 1 is @rest: disjoint, covers everything else.
    assert not (groups[0] & groups[1])
    assert groups[0] | groups[1] == set(scenario.net.fabric.nodes)


def test_driver_emits_records_and_expires_entries():
    spec = registry.get("rolling_ap_brownout")
    scenario = build_scenario(spec)
    seen = []
    for kind in ("fault.degrade", "fault.restore"):
        scenario.sim.trace.subscribe(
            kind, lambda r, k=kind: seen.append((k, r["index"])))
    scenario.run(until=2_300.0)  # past the last window
    assert [s for s in seen if s[0] == "fault.degrade"] == \
        [("fault.degrade", 0), ("fault.degrade", 1), ("fault.degrade", 2)]
    assert [s for s in seen if s[0] == "fault.restore"] == \
        [("fault.restore", 0), ("fault.restore", 1), ("fault.restore", 2)]
    ov = scenario.net.fabric.fault_overlay
    assert not ov.active  # everything expired


def test_driver_schedule_is_single_shot():
    spec = registry.get("split_brain")
    scenario = build_scenario(spec)
    with pytest.raises(RuntimeError, match="already scheduled"):
        scenario.faults.schedule()


def test_subtree_nodes_includes_sources_and_mhs():
    spec = registry.get("split_brain")
    scenario = build_scenario(spec)
    net = scenario.net
    root = net.hierarchy.top_ring.members[0]
    group = subtree_nodes(net, root)
    assert root in group
    # Sources feeding this BR belong to its side of the partition.
    for sid, src in net.sources.items():
        assert (sid in group) == (src.corresponding in group)


def test_two_drivers_on_one_fabric_get_disjoint_namespaces(sim):
    """A second plan on the same fabric must not clobber the first's
    entries (overlay indices are driver-namespaced)."""
    from repro.faults.plan import FaultPlan, Partition

    fabric, nodes = _mesh(sim, ["a", "b"])

    class NetStub:
        def __init__(self, fabric):
            self.fabric = fabric
            self.mobile_hosts = {}
            self.sources = {}

    net = NetStub(fabric)
    plan = FaultPlan(actions=[
        Partition(at_ms=1.0, heal_at_ms=5.0,
                  groups=[["a"], ["@rest"]])])
    d1 = FaultDriver(sim, net, plan)
    d2 = FaultDriver(sim, net, plan)
    d1.schedule()
    d2.schedule()
    healed = []
    sim.trace.subscribe("fault.heal", lambda r: healed.append(r["index"]))
    sim.run(until=10.0)
    # Both plans activated and healed under distinct indices; neither
    # heal raised, and the overlay is empty again.
    assert sorted(healed) == [0, 1]
    assert not fabric.fault_overlay.active


def test_empty_partition_group_fails_loudly(sim):
    from repro.faults.plan import FaultPlan, Partition

    fabric, nodes = _mesh(sim, ["a", "b"])

    class NetStub:
        def __init__(self, fabric):
            self.fabric = fabric
            self.mobile_hosts = {}
            self.sources = {}

    plan = FaultPlan(actions=[
        Partition(at_ms=1.0, groups=[["zz:9.*"], ["@rest"]])])
    driver = FaultDriver(sim, NetStub(fabric), plan)
    driver.schedule()
    with pytest.raises(ValueError, match="resolved to no fabric node"):
        sim.run(until=10.0)
