"""Tests for the MH endpoint: join, deliver, handoff, leave, gap fill."""

from repro.core.config import ProtocolConfig

from helpers import run_with_traffic, small_net


def test_join_receives_join_ack_and_membership():
    sim, net = small_net(mhs_per_ap=0)
    net.start()
    mh = net.add_mobile_host("mh:x", "ap:0.0.0")
    sim.run(until=500)
    assert mh.is_member


def test_late_joiner_starts_after_join_point():
    sim, net = small_net(mhs_per_ap=1)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=2_000)
    late = net.add_mobile_host("mh:late", "ap:0.0.0")
    sim.run(until=5_000)
    seqs = late.delivered_seqs()
    assert seqs, "late joiner never delivered"
    assert seqs[0] > 0  # does not replay history from seq 0
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))


def test_handoff_preserves_continuity():
    sim, net = small_net(mhs_per_ap=1)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.schedule_at(1_500, lambda: net.handoff("mh:0.0.0.0", "ap:1.1.1"))
    sim.run(until=4_000)
    src.stop()
    sim.run(until=7_000)
    mover = net.mobile_hosts["mh:0.0.0.0"]
    assert mover.handoffs == 1
    seqs = mover.delivered_seqs()
    # No duplicates, no skips (zero tombstones expected on a warm path).
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
    assert mover.tombstones == 0
    # Delivered the same count as a non-moving peer.
    peer = net.mobile_hosts["mh:2.1.1.0"]
    assert abs(mover.delivered_count - peer.delivered_count) <= 1


def test_multiple_rapid_handoffs():
    sim, net = small_net(mhs_per_ap=1, seed=5)
    src = net.add_source(rate_per_sec=25)
    net.start()
    src.start()
    aps = ["ap:0.0.1", "ap:1.0.0", "ap:2.1.0", "ap:0.1.1"]
    for i, ap in enumerate(aps):
        sim.schedule_at(1_000 + 400 * i, net.handoff, "mh:0.0.0.0", ap)
    sim.run(until=5_000)
    src.stop()
    sim.run(until=9_000)
    mover = net.mobile_hosts["mh:0.0.0.0"]
    assert mover.handoffs == len(aps)
    seqs = mover.delivered_seqs()
    assert seqs == sorted(set(seqs))  # strict order, no dups


def test_leave_stops_app_delivery():
    sim, net = small_net(mhs_per_ap=1)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=1_500)
    mh = net.member_hosts()[0]
    mh.leave()
    n = mh.delivered_count
    sim.run(until=4_000)
    assert mh.delivered_count <= n + 2


def test_mh_keeps_no_history():
    sim, net, _ = run_with_traffic(rate=30, until=4_000, check_order=False)
    for m in net.member_hosts():
        # Delivered messages are pruned immediately (resource constraint).
        assert m.mq.occupancy <= 5


def test_latency_recorded_per_delivery():
    sim, net, _ = run_with_traffic(rate=20, until=3_000, check_order=False)
    mh = net.member_hosts()[0]
    assert mh.app_log
    assert all(lat > 0 for _, _, lat in mh.app_log)


def test_handoff_after_long_detour_tombstones_unservable_range():
    # Tiny retention: after the MH is away long enough, the new AP cannot
    # serve the full catch-up range and the MH tombstones it (documented
    # best-effort behaviour).
    cfg = ProtocolConfig(mq_retention=4, smooth_handoff=False)
    sim, net = small_net(mhs_per_ap=1, cfg=cfg, seed=3)
    src = net.add_source(rate_per_sec=50)
    net.start()
    src.start()
    mh = net.mobile_hosts["mh:0.0.0.0"]

    def detach_quietly():
        # Simulate a long disconnection: detach without re-registering
        # (stamped with the live attachment epoch so the AP honors it).
        from repro.core.messages import Detach
        mh.chan.send(mh.ap, Detach(cfg.gid, mh.guid,
                                   epoch=mh._attach_epoch))
    sim.schedule_at(1_000, detach_quietly)
    sim.schedule_at(3_000, lambda: net.handoff("mh:0.0.0.0", "ap:1.0.0"))
    sim.run(until=6_000)
    src.stop()
    sim.run(until=10_000)
    assert mh.tombstones > 0
    # And delivery still proceeds after the tombstoned range.
    seqs = mh.delivered_seqs()
    assert seqs and seqs[-1] > 100


def test_stale_detach_cannot_cancel_newer_registration():
    """A retransmission-delayed Detach must not tear down a newer
    registration from the same MH (ping-pong inside the RTO window)."""
    from repro.core.messages import Detach

    sim, net = small_net(mhs_per_ap=1, seed=3)
    net.start()
    src = net.add_source(rate_per_sec=30)
    src.start()
    sim.run(until=500)

    mh = net.mobile_hosts["mh:0.0.0.0"]
    home, away = "ap:0.0.0", "ap:0.0.1"
    stale_epoch = mh._attach_epoch          # the attachment about to end
    net.handoff(mh.guid, away)              # Detach(home, stale_epoch)
    net.handoff(mh.guid, home)              # ... and straight back
    sim.run(until=1_000)
    assert net.nes[home].has_child(mh.guid)

    # The stale Detach finally lands (as a delayed retransmission would).
    net.nes[home]._ap_handle_detach(Detach(net.cfg.gid, mh.guid,
                                           epoch=stale_epoch))
    assert net.nes[home].has_child(mh.guid)  # newer registration survives
    before = mh.delivered_count
    sim.run(until=3_000)
    assert mh.delivered_count > before       # delivery never blacked out

    # A Detach for the *current* epoch is still honored (normal leave).
    net.nes[home]._ap_handle_detach(Detach(net.cfg.gid, mh.guid,
                                           epoch=mh._attach_epoch))
    assert not net.nes[home].has_child(mh.guid)


def test_late_register_cannot_resurrect_detached_attachment():
    """The mirror race: a handoff ping-pong A->B->A inside one RTT can
    deliver B's Register *after* the equal-epoch Detach; the register
    describes an attachment already torn down and must be ignored."""
    from repro.core.messages import Detach, HandoffRegister

    sim, net = small_net(mhs_per_ap=1, seed=4)
    net.start()
    sim.run(until=200)
    mh = net.mobile_hosts["mh:0.0.0.0"]
    other = net.nes["ap:0.0.1"]
    epoch = mh._attach_epoch + 1  # the epoch a handoff to `other` would mint

    # Detach for epoch N processed first (out-of-order arrival) ...
    other._ap_handle_detach(Detach(net.cfg.gid, mh.guid, epoch=epoch))
    # ... then the cancelled-but-already-on-the-wire Register lands.
    other._ap_handle_register(HandoffRegister(
        net.cfg.gid, mh.guid, max_delivered_seq=5, joining=False,
        epoch=epoch))
    assert not other.has_child(mh.guid)

    # A genuinely newer attachment (higher epoch) still registers fine.
    other._ap_handle_register(HandoffRegister(
        net.cfg.gid, mh.guid, max_delivered_seq=5, joining=False,
        epoch=epoch + 1))
    assert other.has_child(mh.guid)
