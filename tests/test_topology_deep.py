"""Tests for sub-tier (deep) hierarchies — paper §3's extension."""

import pytest

from repro.core.protocol import RingNet
from repro.metrics.order_checker import OrderChecker
from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.topology.builder import (
    build_deep_hierarchy,
    deep_initial_attachments,
    provision_links,
)
from repro.topology.tiers import Tier


def test_deep_build_validates():
    h = build_deep_hierarchy(n_br=2, ring_size=2, depth=3, aps_per_ag=1,
                             mhs_per_ap=1)
    h.validate()
    # Levels: 2 BRs, each with a depth-3 binary ring cascade:
    # level sizes 2, 4, 8 AGs per BR.
    assert len(h.nodes_of_tier(Tier.AG)) == 2 * (2 + 4 + 8)
    # APs only at the deepest level.
    assert len(h.nodes_of_tier(Tier.AP)) == 2 * 8 * 1


def test_deep_ring_leaders_have_parents_at_every_level():
    h = build_deep_hierarchy(n_br=2, ring_size=3, depth=2)
    for rid, ring in h.rings.items():
        if rid == h.top_ring_id:
            continue
        parent = h.parent[ring.leader]
        assert parent in h.tier_of


def test_deep_attachments_resolve():
    h = build_deep_hierarchy(n_br=2, ring_size=2, depth=2, aps_per_ag=2,
                             mhs_per_ap=2)
    att = deep_initial_attachments(h)
    assert len(att) == len(h.nodes_of_tier(Tier.MH))
    for mh, ap in att.items():
        assert h.tier_of[ap] is Tier.AP


def test_deep_builder_validation():
    with pytest.raises(ValueError):
        build_deep_hierarchy(depth=0)
    with pytest.raises(ValueError):
        build_deep_hierarchy(ring_size=0)


def run_deep_protocol(depth: int, seed: int = 23):
    sim = Simulator(seed=seed)
    fabric = Fabric(sim)
    h = build_deep_hierarchy(n_br=2, ring_size=2, depth=depth,
                             aps_per_ag=1, mhs_per_ap=1)
    provision_links(fabric, h)
    net = RingNet(sim, fabric, h)
    for mh, ap in deep_initial_attachments(h).items():
        net.add_mobile_host(mh, ap)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=15)
    net.start()
    src.start()
    sim.run(until=6_000)
    src.stop()
    sim.run(until=12_000)
    return net, src, checker


def test_protocol_runs_unchanged_on_deep_hierarchy():
    net, src, checker = run_deep_protocol(depth=3)
    checker.assert_ok()
    counts = [m.delivered_count for m in net.member_hosts()]
    assert min(counts) == src.sent  # full delivery at every depth-3 leaf


def test_deep_hierarchy_total_order_across_subtrees():
    net, src, checker = run_deep_protocol(depth=2)
    checker.assert_ok()
    ref = None
    for m in net.member_hosts():
        stream = [(g, p) for g, p, _ in m.app_log]
        if ref is None:
            ref = stream
        else:
            assert stream == ref  # byte-identical streams everywhere


def test_deep_hierarchy_latency_grows_with_depth():
    from repro.metrics.collectors import LatencyCollector

    def median_latency(depth: int) -> float:
        sim = Simulator(seed=29)
        fabric = Fabric(sim)
        h = build_deep_hierarchy(n_br=2, ring_size=2, depth=depth,
                                 aps_per_ag=1, mhs_per_ap=1)
        provision_links(fabric, h)
        net = RingNet(sim, fabric, h)
        for mh, ap in deep_initial_attachments(h).items():
            net.add_mobile_host(mh, ap)
        lat = LatencyCollector(sim.trace, warmup=1_500.0)
        src = net.add_source(corresponding="br:0", rate_per_sec=15)
        net.start()
        src.start()
        sim.run(until=6_000)
        return lat.summary()["p50"]

    shallow, deep = median_latency(1), median_latency(4)
    assert deep > shallow  # each extra ring level adds bounded hops
    assert deep < shallow + 40.0  # ...but only linearly, not worse
