"""Tests for the repro.experiments subsystem.

Covers: spec round-trips, dotted overrides, grid expansion and seed
derivation, registry construction, same-seed replay determinism,
serial-vs-parallel runner equivalence, aggregation math, deterministic
artifact export, and a CLI smoke test.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments import (ChurnSpec, ExperimentSpec, FailureEvent,
                               HierarchyShape, MobilitySpec, RunPoint,
                               RunResult, WorkloadSpec, aggregate,
                               build_scenario, expand_grid, export_csv,
                               export_json, registry, run_point, run_sweep)
from repro.experiments.__main__ import main as cli_main
from repro.sim.rand import RandomStreams, derive_seed

#: Small, fast spec used by the execution tests (~0.2 s wall per run).
TINY = ExperimentSpec(
    name="tiny",
    hierarchy=HierarchyShape(n_br=2, ags_per_br=1, aps_per_ag=1,
                             mhs_per_ap=1),
    workload=WorkloadSpec(s=1, rate_per_sec=20.0),
    duration_ms=1_500.0,
    warmup_ms=500.0,
    seed=42,
)


# ----------------------------------------------------------------------
# Spec serialization
# ----------------------------------------------------------------------
class TestSpec:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(
            name="rt",
            system="single_ring",
            hierarchy=HierarchyShape(n_br=5, depth=2, ring_size=4),
            protocol={"tau": 2.5, "mq_retention": 32},
            workload=WorkloadSpec(rates=[60.0, 10.0], pattern="poisson"),
            mobility=MobilitySpec(enabled=True, model="directional"),
            churn=ChurnSpec(enabled=True, mean_interval_ms=100.0),
            failures=[FailureEvent(at_ms=100.0, kind="crash", target="br:0"),
                      FailureEvent(kind="crash_token_holder", at_ms=5.0)],
            duration_ms=5_000.0, warmup_ms=1_000.0, seed=99,
        )
        data = spec.to_dict()
        again = ExperimentSpec.from_dict(data)
        assert again == spec
        assert again.to_dict() == data

    def test_json_round_trip(self):
        spec = registry.get("failure_drill")
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_partial_dict_uses_defaults(self):
        spec = ExperimentSpec.from_dict({"hierarchy": {"n_br": 7}})
        assert spec.hierarchy.n_br == 7
        assert spec.hierarchy.ags_per_br == HierarchyShape().ags_per_br
        assert spec.workload == WorkloadSpec()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ExperimentSpec.from_dict({"n_br": 3})
        with pytest.raises(ValueError, match="unknown"):
            ExperimentSpec.from_dict({"hierarchy": {"brs": 3}})

    def test_with_overrides_dotted(self):
        base = registry.get("quickstart")
        new = base.with_overrides({
            "hierarchy.n_br": 6,
            "workload.rate_per_sec": 99.0,
            "protocol.tau": 1.25,
            "system": "unordered",
        })
        assert (new.hierarchy.n_br, new.workload.rate_per_sec) == (6, 99.0)
        assert new.protocol["tau"] == 1.25
        assert new.system == "unordered"
        # The original is untouched.
        assert base.hierarchy.n_br == 3 and base.protocol == {}

    def test_with_overrides_unknown_path(self):
        with pytest.raises(KeyError):
            registry.get("quickstart").with_overrides({"hierarchy.nbr": 1})
        with pytest.raises(KeyError):
            registry.get("quickstart").with_overrides({"nope": 1})

    def test_protocol_config_validation(self):
        spec = TINY.with_overrides({"protocol.tau": 2.0})
        assert spec.protocol_config().tau == 2.0
        bad = TINY.copy()
        bad.protocol["not_a_knob"] = 1
        with pytest.raises(ValueError, match="not_a_knob"):
            bad.protocol_config()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(system="carrier_pigeon")
        with pytest.raises(ValueError):
            ExperimentSpec(duration_ms=1000.0, warmup_ms=1000.0)
        with pytest.raises(ValueError):
            WorkloadSpec(pattern="fractal")
        with pytest.raises(ValueError):
            FailureEvent(kind="crash")  # no target


# ----------------------------------------------------------------------
# Grid expansion and seed derivation
# ----------------------------------------------------------------------
class TestGrid:
    SWEEP = {"hierarchy.n_br": [2, 3, 4], "workload.rate_per_sec": [10.0, 20.0]}

    def test_point_count_and_params(self):
        points = expand_grid(TINY, self.SWEEP, replications=3)
        assert len(points) == 3 * 2 * 3
        assert len({p.run_id for p in points}) == len(points)
        # Axis order: n_br is the outer (slower) axis.
        assert points[0].params == {"hierarchy.n_br": 2,
                                    "workload.rate_per_sec": 10.0}
        assert points[0].spec.hierarchy.n_br == 2
        assert points[-1].spec.hierarchy.n_br == 4
        assert {p.replication for p in points} == {0, 1, 2}

    def test_seeds_deterministic_and_distinct(self):
        a = expand_grid(TINY, self.SWEEP, replications=2)
        b = expand_grid(TINY, self.SWEEP, replications=2)
        assert [p.seed for p in a] == [p.seed for p in b]
        assert len({p.seed for p in a}) == len(a)
        assert all(p.spec.seed == p.seed for p in a)
        # Root seed actually matters.
        c = expand_grid(TINY, self.SWEEP, replications=2, root_seed=1)
        assert [p.seed for p in c] != [p.seed for p in a]

    def test_explicit_seed_axis_wins(self):
        points = expand_grid(TINY, {"seed": [111, 222]})
        assert [p.seed for p in points] == [111, 222]
        assert [p.spec.seed for p in points] == [111, 222]

    def test_no_sweep_is_single_point(self):
        points = expand_grid(TINY, None, replications=2)
        assert len(points) == 2
        assert points[0].params == {}

    def test_bad_axes_rejected(self):
        with pytest.raises(ValueError):
            expand_grid(TINY, {"hierarchy.n_br": 3})  # not a list
        with pytest.raises(ValueError):
            expand_grid(TINY, {"hierarchy.n_br": []})
        with pytest.raises(ValueError):
            expand_grid(TINY, None, replications=0)

    def test_seed_axis_with_replications_rejected(self):
        # seeds [1,1,1,2,2,2] would be n fake "independent" samples.
        with pytest.raises(ValueError, match="seed"):
            expand_grid(TINY, {"seed": [1, 2]}, replications=3)

    def test_run_point_dict_round_trip(self):
        point = expand_grid(TINY, self.SWEEP, replications=1)[3]
        assert RunPoint.from_dict(point.to_dict()) == point


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(7, 0, 1) == derive_seed(7, 0, 1)
        seeds = {derive_seed(7, p, r) for p in range(10) for r in range(10)}
        assert len(seeds) == 100

    def test_streams_spawn(self):
        parent = RandomStreams(7)
        child_a = parent.spawn(0)
        child_b = parent.spawn(1)
        assert child_a.master_seed == parent.spawn(0).master_seed
        assert child_a.master_seed != child_b.master_seed
        # Spawned streams draw independently of the parent's.
        assert child_a.get("x").random() != parent.get("x").random()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_catalog_complete(self):
        expected = {"quickstart", "handoff_storm", "churn_heavy",
                    "deep_hierarchy", "failure_drill", "ring_vs_baselines",
                    "hotspot", "bursty_sources", "correlated_ap_failures"}
        assert expected <= set(registry.names())

    def test_factories_return_fresh_specs(self):
        a = registry.get("quickstart")
        a.protocol["tau"] = 0.1
        assert registry.get("quickstart").protocol == {}

    def test_get_with_overrides(self):
        spec = registry.get("quickstart", **{"workload.s": 3})
        assert spec.workload.s == 3

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="quickstart"):
            registry.get("no_such_scenario")

    def test_every_scenario_builds(self):
        # Construction only (no run): catches spec/runner mismatches
        # like bad node ids in failure events or shape constraints.
        for name in registry.names():
            scenario = build_scenario(registry.get(name))
            assert scenario.net is not None, name
            assert len(scenario.fleet) >= 1, name


# ----------------------------------------------------------------------
# Runner determinism and equivalence
# ----------------------------------------------------------------------
class TestRunner:
    def test_same_seed_same_result(self):
        a = run_point(TINY).to_dict(include_timing=False)
        b = run_point(TINY).to_dict(include_timing=False)
        assert a == b
        assert a["delivered"] > 0 and a["order_violations"] == 0

    def test_different_seed_different_trajectory(self):
        # CBR traffic on a jittered fabric: latency samples must differ.
        a = run_point(TINY)
        b = run_point(TINY.with_overrides({"seed": 43}))
        assert a.latency != b.latency

    def test_serial_equals_parallel(self):
        points = expand_grid(TINY, {"workload.rate_per_sec": [10.0, 30.0]},
                             replications=1)
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
        assert [r.to_dict(include_timing=False) for r in serial] == \
               [r.to_dict(include_timing=False) for r in parallel]

    def test_jobs_env_override_and_cpu_clamp(self, monkeypatch):
        import os

        from repro.experiments.runner import resolve_jobs

        monkeypatch.delenv("REPRO_SWEEP_JOBS", raising=False)
        cpus = max(1, os.cpu_count() or 1)
        # Oversubscription clamps to the machine instead of thrashing.
        assert resolve_jobs(10_000) == cpus
        assert resolve_jobs(1) == 1
        # The environment overrides the requested value...
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "1")
        assert resolve_jobs(64) == 1
        # ...and is itself clamped.
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "9999")
        assert resolve_jobs(1) == cpus
        # Garbage and non-positive values fail loudly.
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "lots")
        with pytest.raises(ValueError):
            resolve_jobs(2)
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "0")
        with pytest.raises(ValueError):
            resolve_jobs(2)

    def test_sweep_honors_jobs_env(self, monkeypatch):
        points = expand_grid(TINY, {"workload.rate_per_sec": [10.0, 30.0]},
                             replications=1)
        baseline = run_sweep(points, jobs=1)
        # An env-forced serial run is byte-identical to an explicit one,
        # proving the override reached the pool sizing.
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "1")
        forced = run_sweep(points, jobs=8)
        assert [r.to_dict(include_timing=False) for r in forced] == \
               [r.to_dict(include_timing=False) for r in baseline]

    def test_unordered_system_runs(self):
        r = run_point(TINY.with_overrides({"system": "unordered"}))
        assert r.delivered > 0 and not r.order_checked

    def test_unordered_honors_shared_reliability_knobs(self):
        spec = TINY.with_overrides({"system": "unordered",
                                    "protocol.rto": 80.0,
                                    "protocol.max_retries": 2})
        scenario = build_scenario(spec)
        assert scenario.net.rto == 80.0 and scenario.net.max_retries == 2
        # Ordering-only knobs would be silently ignored -> rejected.
        with pytest.raises(ValueError, match="tau"):
            build_scenario(TINY.with_overrides({"system": "unordered",
                                                "protocol.tau": 2.0}))

    def test_single_ring_system_runs(self):
        r = run_point(TINY.with_overrides({"system": "single_ring"}))
        assert r.delivered > 0 and r.order_violations == 0

    def test_failure_events_fire(self):
        spec = TINY.with_overrides({"duration_ms": 2_500.0})
        spec.failures.append(FailureEvent(at_ms=1_000.0, kind="crash",
                                          target="br:1"))
        r = run_point(spec)
        assert r.delivered > 0 and r.order_violations == 0

    def test_recover_rejected_on_token_passing_systems(self):
        # A ringnet crash removes the NE from the topology; a fabric
        # "recover" would silently measure a permanent crash.
        spec = TINY.copy()
        spec.failures = [FailureEvent(at_ms=500.0, kind="crash",
                                      target="br:1"),
                         FailureEvent(at_ms=900.0, kind="recover",
                                      target="br:1")]
        with pytest.raises(ValueError, match="recover"):
            build_scenario(spec)
        # The unordered baseline crashes at fabric level, so its
        # recover is real.
        spec.system = "unordered"
        r = run_point(spec)
        assert r.delivered > 0

    def test_mobility_requires_ringnet(self):
        spec = TINY.copy()
        spec.mobility.enabled = True
        spec.system = "unordered"
        with pytest.raises(ValueError, match="mobility"):
            build_scenario(spec)


# ----------------------------------------------------------------------
# Aggregation and export
# ----------------------------------------------------------------------
def _result(point_index: int, replication: int, goodput: float) -> RunResult:
    return RunResult(run_id=f"t#p{point_index}r{replication}", name="t",
                     point_index=point_index, replication=replication,
                     params={"x": point_index}, goodput=goodput,
                     latency={"mean": goodput, "p50": goodput,
                              "p95": goodput, "p99": goodput,
                              "max": goodput})


class TestResults:
    def test_aggregate_math(self):
        rows = aggregate([_result(0, 0, 10.0), _result(0, 1, 14.0),
                          _result(1, 0, 5.0)])
        assert [r["point_index"] for r in rows] == [0, 1]
        g0 = rows[0]["metrics"]["goodput"]
        assert g0["mean"] == pytest.approx(12.0)
        assert g0["std"] == pytest.approx(math.sqrt(8.0))
        assert g0["ci95"] == pytest.approx(1.96 * math.sqrt(8.0 / 2))
        assert rows[1]["metrics"]["goodput"] == {"mean": 5.0, "std": 0.0,
                                                 "ci95": 0.0}

    def test_replication_order_irrelevant(self):
        fwd = aggregate([_result(0, 0, 1.0), _result(0, 1, 2.0),
                         _result(0, 2, 4.0)])
        rev = aggregate([_result(0, 2, 4.0), _result(0, 0, 1.0),
                         _result(0, 1, 2.0)])
        assert fwd == rev

    def test_export_deterministic(self, tmp_path):
        points = expand_grid(TINY, {"workload.rate_per_sec": [10.0, 20.0]},
                             replications=2)
        results = run_sweep(points, jobs=1)
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        export_json(str(p1), results)
        export_json(str(p2), run_sweep(points, jobs=2))
        assert p1.read_bytes() == p2.read_bytes()
        doc = json.loads(p1.read_text())
        assert doc["schema"] == "repro.experiments/v1"
        assert doc["n_runs"] == 4 and len(doc["aggregates"]) == 2
        for agg in doc["aggregates"]:
            assert agg["n"] == 2
            assert set(agg["metrics"]["goodput"]) == {"mean", "std", "ci95"}
        # Timing is opt-in (it breaks byte-reproducibility).
        assert "wall_time_s" not in doc["runs"][0]

    def test_export_csv(self, tmp_path):
        rows = aggregate([_result(0, 0, 10.0), _result(1, 0, 5.0)])
        path = tmp_path / "agg.csv"
        export_csv(str(path), rows)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("point_index,name,system,n,param:x,")


# ----------------------------------------------------------------------
# Numpy-free report fallback
# ----------------------------------------------------------------------
class TestReportFallback:
    def test_pure_python_matches_numpy(self, monkeypatch):
        import numpy
        from repro.metrics import report
        values = [5.0, 1.0, 9.5, 2.25, 7.0, 3.0, 8.0]
        with_np = {q: report.percentile(values, q) for q in (0, 50, 95, 99, 100)}
        summary_np = report.summarize(values)
        monkeypatch.setattr(report, "np", None)
        for q, expected in with_np.items():
            assert report.percentile(values, q) == pytest.approx(expected)
        summary_py = report.summarize(values)
        for key in summary_np:
            assert summary_py[key] == pytest.approx(summary_np[key])
        assert numpy is not None  # fallback exercised by patching only

    def test_empty_and_singleton(self, monkeypatch):
        from repro.metrics import report
        monkeypatch.setattr(report, "np", None)
        assert report.percentile([], 50) == 0.0
        assert report.summarize([3.0])["p99"] == 3.0

    def test_numpy_free_simulation(self, monkeypatch):
        # With numpy "absent" everywhere, a whole run must still work
        # (python-Mersenne streams) and stay seed-deterministic.
        from repro.metrics import report
        from repro.sim import rand
        monkeypatch.setattr(report, "np", None)
        monkeypatch.setattr(rand, "np", None)
        a = run_point(TINY).to_dict(include_timing=False)
        b = run_point(TINY).to_dict(include_timing=False)
        assert a == b
        assert a["delivered"] > 0 and a["order_violations"] == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_parse_value_booleans(self):
        from repro.experiments.__main__ import _parse_params
        # Python and JSON spellings both become real booleans — a
        # string "False" would truthy-enable boolean protocol knobs.
        assert _parse_params(["protocol.smooth_handoff=True,false"]) == \
            {"protocol.smooth_handoff": [True, False]}
        assert _parse_params(["x=None,null,3,text"]) == \
            {"x": [None, None, 3, "text"]}

    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out and "handoff_storm" in out

    def test_run_smoke(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = cli_main(["run", "quickstart", "--duration", "1200",
                       "--quiet", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["n_runs"] == 1
        assert doc["runs"][0]["delivered"] > 0
        assert "goodput" in capsys.readouterr().out

    def test_sweep_smoke(self, tmp_path, capsys):
        out, csv_out = tmp_path / "s.json", tmp_path / "s.csv"
        rc = cli_main(["sweep", "quickstart",
                       "--param", "workload.rate_per_sec=10,20",
                       "--reps", "2", "--duration", "1200", "--jobs", "1",
                       "--quiet", "--out", str(out), "--csv", str(csv_out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["n_runs"] == 4 and len(doc["aggregates"]) == 2
        assert doc["meta"]["sweep"] == {"workload.rate_per_sec": [10, 20]}
        assert csv_out.exists()


class TestCheckIntegration:
    """--check wires the repro.validation suite into run/sweep."""

    def test_run_point_check_fills_violations(self):
        spec = registry.get("quickstart", **{"duration_ms": 1_200.0,
                                             "warmup_ms": 0.0})
        result = run_point(spec, check=True)
        assert result.violations == []
        assert result.delivered > 0

    def test_run_point_unchecked_omits_violations_key(self):
        spec = registry.get("quickstart", **{"duration_ms": 1_200.0,
                                             "warmup_ms": 0.0})
        result = run_point(spec)
        assert result.violations is None
        assert "violations" not in result.to_dict()

    def test_checked_and_unchecked_runs_agree(self):
        spec = registry.get("quickstart", **{"duration_ms": 1_200.0,
                                             "warmup_ms": 0.0})
        plain = run_point(spec).to_dict(include_timing=False)
        checked = run_point(spec, check=True).to_dict(include_timing=False)
        checked.pop("violations")
        assert checked == plain

    def test_parallel_sweep_carries_check_through_workers(self):
        base = registry.get("quickstart", **{"duration_ms": 1_200.0,
                                             "warmup_ms": 0.0})
        points = expand_grid(base, {"workload.rate_per_sec": [10.0, 20.0]})
        serial = run_sweep(points, jobs=1, check=True)
        parallel = run_sweep(points, jobs=2, check=True)
        assert all(r.violations == [] for r in serial)
        assert [r.to_dict(include_timing=False) for r in serial] \
            == [r.to_dict(include_timing=False) for r in parallel]

    def test_cli_run_check_flag(self, tmp_path, capsys):
        rc = cli_main(["run", "quickstart", "--duration", "1200",
                       "--quiet", "--check"])
        assert rc == 0
        assert "satisfied every protocol invariant" in capsys.readouterr().out

    def test_cli_check_artifact_records_empty_violations(self, tmp_path):
        out = tmp_path / "checked.json"
        rc = cli_main(["run", "quickstart", "--duration", "1200",
                       "--quiet", "--check", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["violations"] == []
