"""End-to-end integration: big topologies, combined fault + mobility load.

These are the "everything at once" runs: multi-source traffic, roaming
members, churn, NE crashes — with the full total-order invariant checked
over every delivery.
"""

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.collectors import (
    InterruptionCollector,
    LatencyCollector,
    ReliabilityCollector,
    ThroughputCollector,
)
from repro.metrics.order_checker import OrderChecker
from repro.mobility.cells import CellGrid
from repro.mobility.handoff import HandoffDriver
from repro.mobility.models import DirectionalWalk, RandomWalk
from repro.net.link import LinkSpec
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec
from repro.topology.tiers import Tier
from repro.workloads.churn import ChurnDriver
from repro.workloads.generators import uniform_sources


def test_large_topology_multi_source():
    sim = Simulator(seed=31)
    spec = HierarchySpec(n_br=5, ags_per_br=3, aps_per_ag=2, mhs_per_ap=2)
    net = RingNet.build(sim, spec)
    checker = OrderChecker(sim.trace)
    thr = ThroughputCollector(sim.trace)
    fleet = uniform_sources(net, s=4, rate_per_sec=15)
    net.start()
    fleet.start(stagger=7.0)
    sim.run(until=8_000)
    checker.assert_ok()
    # Theorem 5.1 throughput parity: goodput ≈ s·λ in steady state.
    goodput = thr.goodput(2_000, 8_000)
    assert abs(goodput - 60.0) / 60.0 < 0.05
    assert checker.deliveries_checked > 10_000


def test_everything_at_once():
    """Traffic + mobility + churn + a BR crash, order must still hold."""
    sim = Simulator(seed=32)
    spec = HierarchySpec(n_br=4, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)
    net = RingNet.build(sim, spec)
    checker = OrderChecker(sim.trace)
    fleet = uniform_sources(net, s=2, rate_per_sec=15)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid.square_for(aps)
    driver = HandoffDriver(net, grid, RandomWalk(mean_dwell_ms=700.0))
    churn = ChurnDriver(net, aps, mean_interval_ms=600.0, min_members=4)
    net.start()
    fleet.start(stagger=3.0)
    for mh_id, mh in net.mobile_hosts.items():
        driver.track(mh_id, mh.ap)
    churn.start()
    sim.schedule_at(4_000, lambda: net.crash_ne("br:3"))
    sim.run(until=12_000)
    churn.stop()
    fleet.stop()
    sim.run(until=18_000)
    checker.assert_ok()
    assert driver.handoffs_driven > 0
    assert churn.joins > 0
    # Long-lived members saw nearly everything.
    long_lived = [m for m in net.member_hosts()
                  if m.guid in net.mobile_hosts and m.guid.startswith("mh:")]
    assert long_lived
    best = max(m.delivered_count + m.tombstones for m in long_lived)
    assert best >= fleet.total_sent - 10


def test_directional_mobility_with_lossy_wireless():
    sim = Simulator(seed=33)
    spec = HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=3, mhs_per_ap=1)
    net = RingNet.build(sim, spec,
                        wireless=LinkSpec(latency=5.0, jitter=2.0,
                                          loss_prob=0.08))
    checker = OrderChecker(sim.trace)
    rel = ReliabilityCollector(sim.trace)
    fleet = uniform_sources(net, s=2, rate_per_sec=10)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid.square_for(aps)
    driver = HandoffDriver(net, grid,
                           DirectionalWalk(mean_dwell_ms=900.0,
                                           persistence=0.7))
    net.start()
    fleet.start()
    for mh_id, mh in net.mobile_hosts.items():
        driver.track(mh_id, mh.ap)
    sim.run(until=10_000)
    fleet.stop()
    sim.run(until=16_000)
    checker.assert_ok()
    assert rel.delivery_ratio() > 0.95  # retransmission absorbs most loss


def test_interruption_small_with_smooth_handoff():
    sim = Simulator(seed=34)
    cfg = ProtocolConfig(smooth_handoff=True)
    spec = HierarchySpec(n_br=2, ags_per_br=2, aps_per_ag=3, mhs_per_ap=1)
    net = RingNet.build(sim, spec, cfg=cfg)
    inter = InterruptionCollector(sim.trace)
    fleet = uniform_sources(net, s=1, rate_per_sec=30)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid.square_for(aps)
    driver = HandoffDriver(net, grid, RandomWalk(mean_dwell_ms=1_000.0))
    net.start()
    fleet.start()
    for mh_id, mh in net.mobile_hosts.items():
        driver.track(mh_id, mh.ap)
    sim.run(until=10_000)
    s = inter.summary()
    assert inter.interruptions
    # With a 30 msg/s stream (33 ms cadence) the p50 interruption stays
    # within a few inter-message gaps when paths are warm.
    assert s["p50"] < 200.0


def test_deterministic_replay():
    """Same seed ⇒ identical delivery transcript (the repo's bedrock)."""
    def run(seed):
        sim = Simulator(seed=seed)
        net = RingNet.build(sim, HierarchySpec(n_br=3, ags_per_br=2,
                                               aps_per_ag=1, mhs_per_ap=1))
        fleet = uniform_sources(net, s=2, rate_per_sec=20)
        net.start()
        fleet.start()
        sim.run(until=3_000)
        mh = net.mobile_hosts["mh:0.0.0.0"]
        return [(g, p) for g, p, _ in mh.app_log]

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_latency_statistics_reasonable():
    sim = Simulator(seed=35)
    net = RingNet.build(sim, HierarchySpec())
    lat = LatencyCollector(sim.trace, warmup=1_000)
    fleet = uniform_sources(net, s=2, rate_per_sec=20)
    net.start()
    fleet.start()
    sim.run(until=8_000)
    s = lat.summary()
    # End-to-end latency must exceed the physical floor (a few hops) and
    # stay below the Theorem 5.1 style bound for this configuration.
    assert 5.0 < s["p50"] < 100.0
    assert s["max"] < 500.0
