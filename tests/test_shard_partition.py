"""Partitioner invariants: cut edges, balance, MH co-location.

These pin the properties the conservative runtime's correctness rests
on: every cross-shard edge has finite positive latency (the lookahead
exists), shards are as balanced as indivisible BR subtrees allow, and
every MH lands on its AP's shard.
"""

import pytest

from repro.experiments import registry
from repro.experiments.runner import build_scenario
from repro.shard.partition import (LoadAwareRebalancer, MoveProposal,
                                   PartitionError, cut_edges,
                                   get_partitioner, get_rebalancer,
                                   latency_matrix, lookahead_of,
                                   min_lookahead, partition_hierarchy,
                                   partition_spec)
from repro.topology.builder import (HierarchySpec, build_deep_hierarchy,
                                    build_hierarchy,
                                    deep_initial_attachments,
                                    initial_attachments)

ALL_SCENARIOS = registry.names()


def _build_topology(spec):
    """The hierarchy + initial attachments a spec's build would use."""
    shape = spec.hierarchy
    if shape.depth > 1:
        h = build_deep_hierarchy(n_br=shape.n_br, ring_size=shape.ring_size,
                                 depth=shape.depth,
                                 aps_per_ag=shape.aps_per_ag,
                                 mhs_per_ap=shape.mhs_per_ap)
        return h, deep_initial_attachments(h)
    hs = HierarchySpec(n_br=shape.n_br, ags_per_br=shape.ags_per_br,
                       aps_per_ag=shape.aps_per_ag,
                       mhs_per_ap=shape.mhs_per_ap)
    return build_hierarchy(hs), initial_attachments(hs)


# ----------------------------------------------------------------------
# Cut-edge invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_SCENARIOS)
@pytest.mark.parametrize("k", [2, 4])
def test_cut_edges_have_finite_positive_latency(name, k):
    spec = registry.get(name)
    plan = partition_spec(spec, k)
    scenario = build_scenario(spec)
    cut = cut_edges(scenario.net.fabric, plan)
    for a, b, latency in cut:
        assert latency > 0.0, f"cut edge {a}<->{b} has latency {latency}"
        assert latency != float("inf")
    # With >= 2 BR subtrees spread over >= 2 shards the top ring itself
    # is cut, so a lookahead must exist and bound every cut edge.
    if len({plan.shard_of[br] for br in plan.subtree_shard}) > 1:
        lookahead = lookahead_of(cut)
        assert 0.0 < lookahead < float("inf")
        assert all(lat >= lookahead for _, _, lat in cut)


def test_lookahead_rejects_zero_latency_cut():
    with pytest.raises(PartitionError):
        lookahead_of([("a", "b", 0.0)])


def test_empty_cut_means_unbounded_lookahead():
    assert lookahead_of([]) == float("inf")


# ----------------------------------------------------------------------
# Balance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_SCENARIOS)
@pytest.mark.parametrize("k", [2, 3, 4])
def test_balanced_shards_within_one_subtree(name, k):
    """LPT property: no shard exceeds the lightest by more than the
    heaviest indivisible unit (a full BR subtree with its MHs).

    A greedy assignment never places a subtree on a shard that is not
    currently lightest, so max_load - min_load <= heaviest subtree —
    the classic LPT imbalance bound, checked against the real subtree
    weights recovered from the plan.
    """
    spec = registry.get(name)
    plan = partition_spec(spec, k)
    assert len(plan.weights) == k
    assert sum(plan.weights) == len(plan.shard_of)

    # Recompute each subtree's true weight from the topology: its NEs
    # plus the MHs initially attached under it.
    from repro.shard.partition import _subtree_nodes

    h, attach = _build_topology(spec)
    subtree_weight = {}
    for br in h.top_ring.members:
        nodes = set(_subtree_nodes(h, br))
        mhs = sum(1 for mh, ap in attach.items() if ap in nodes)
        subtree_weight[br] = len(nodes) + mhs
    assert sum(subtree_weight.values()) == sum(plan.weights)
    loads = list(plan.weights)
    assert max(loads) - min(loads) <= max(subtree_weight.values())


def test_deterministic_assignment():
    spec = registry.get("quickstart")
    plans = [partition_spec(spec, 3).to_dict() for _ in range(3)]
    assert plans[0] == plans[1] == plans[2]


# ----------------------------------------------------------------------
# MH -> AP co-location
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_mh_colocated_with_initial_ap(name):
    spec = registry.get(name)
    plan = partition_spec(spec, 4)
    h, attach = _build_topology(spec)
    assert attach, f"{name}: expected initial attachments"
    for mh, ap in attach.items():
        assert plan.shard_of[mh] == plan.shard_of[ap], \
            f"{mh} not co-located with its AP {ap}"
    # Every NE and every MH is covered by the plan.
    for node, tier in h.tier_of.items():
        assert node in plan.shard_of


# ----------------------------------------------------------------------
# Partitioner registry and the latency matrix
# ----------------------------------------------------------------------
def test_partitioner_registry_roundtrip():
    assert get_partitioner(None).name == "balanced"
    assert get_partitioner("lpt").name == "lpt"
    inst = get_partitioner("balanced")
    assert get_partitioner(inst) is inst
    with pytest.raises(PartitionError):
        get_partitioner("nope")


def test_balanced_partitioner_splits_skewed_plans():
    """Where LPT leaves a 2x event skew (quickstart: 3 BR subtrees on 4
    shards), the balanced partitioner splits subtrees one ring level
    down and fills every shard."""
    spec = registry.get("quickstart")
    lpt = partition_spec(spec, 4, partitioner="lpt")
    bal = partition_spec(spec, 4)
    assert min(lpt.weights) == 0          # one empty shard under LPT
    assert min(bal.weights) > 0
    assert (max(bal.weights) - min(bal.weights)
            < max(lpt.weights) - min(lpt.weights))
    assert sorted(bal.shard_of) == sorted(lpt.shard_of)  # same universe


def test_latency_matrix_bounds_every_cut_edge():
    spec = registry.get("quickstart")
    plan = partition_spec(spec, 4)
    scenario = build_scenario(spec)
    wireless = scenario.net.wireless
    matrix = latency_matrix(scenario.net.fabric, plan,
                            wireless_floor=wireless.latency)
    assert len(matrix) == 4 and all(len(row) == 4 for row in matrix)
    assert all(matrix[i][i] == 0.0 for i in range(4))
    # Every provisioned cut edge is bounded by its pair's entry, and the
    # wireless floor caps every off-diagonal pair (mid-run MH links).
    for a, b, lat in cut_edges(scenario.net.fabric, plan):
        i, j = plan.shard_of[a], plan.shard_of[b]
        assert matrix[i][j] <= lat
        assert matrix[j][i] <= lat
    for i in range(4):
        for j in range(4):
            if i != j:
                assert 0.0 < matrix[i][j] <= wireless.latency
    assert min_lookahead(matrix) == min(
        matrix[i][j] for i in range(4) for j in range(4) if i != j)


def test_nodes_of_matches_shard_map():
    spec = registry.get("quickstart")
    plan = partition_spec(spec, 3)
    seen = set()
    for shard in range(3):
        nodes = plan.nodes_of(shard)
        assert len(nodes) == plan.weights[shard]
        assert all(plan.shard_of[n] == shard for n in nodes)
        seen.update(nodes)
    assert seen == set(plan.shard_of)


# ----------------------------------------------------------------------
# Rebalancer interface
# ----------------------------------------------------------------------
def test_rebalancer_registry_roundtrip():
    assert get_rebalancer(None).name == "load-aware"
    assert get_rebalancer("none") is None
    inst = LoadAwareRebalancer(min_interval=100.0)
    assert get_rebalancer(inst) is inst
    with pytest.raises(PartitionError):
        get_rebalancer("nope")


def test_rebalancer_proposals_are_deterministic():
    rb = LoadAwareRebalancer()
    pending = {"mh:b": (0, 1), "mh:a": (1, 0), "mh:c": (0, 2)}
    events = (1000, 1100, 900)
    first = rb.propose(dict(pending), events)
    for _ in range(3):
        assert rb.propose(dict(reversed(pending.items())), events) == first
    # Sorted iteration order, not dict insertion order.
    assert [mv.mh for mv in first] == ["mh:a", "mh:b", "mh:c"]


def test_rebalancer_respects_colocation():
    """Proposals only chase the MH to its AP's shard — never anywhere
    else, and never a no-op move."""
    rb = LoadAwareRebalancer()
    pending = {"mh:x": (0, 1), "mh:y": (2, 2)}
    moves = rb.propose(pending, (100, 100, 100))
    assert moves == [MoveProposal("mh:x", 0, 1)]
    for mv in moves:
        assert mv.to_shard == pending[mv.mh][1]
        assert mv.from_shard != mv.to_shard


def test_rebalancer_skips_overloaded_targets():
    rb = LoadAwareRebalancer(overload_factor=1.5)
    pending = {"mh:x": (0, 1)}
    # Target shard 1 is far above the mean and busier than the owner:
    # the MH stays put.
    assert rb.propose(pending, (100, 1000)) == []
    # Target hot but the owner is even hotter: move anyway.
    assert rb.propose(pending, (2000, 1000)) == [MoveProposal("mh:x", 0, 1)]


# ----------------------------------------------------------------------
# Error cases
# ----------------------------------------------------------------------
def test_baseline_systems_are_rejected():
    spec = registry.get("ring_vs_baselines", system="single_ring")
    with pytest.raises(PartitionError):
        partition_spec(spec, 2)


def test_bad_shard_count_rejected():
    h = build_hierarchy(HierarchySpec())
    with pytest.raises(PartitionError):
        partition_hierarchy(h, 0, {})


def test_unplaced_mh_rejected():
    hs = HierarchySpec(mhs_per_ap=1)
    h = build_hierarchy(hs)
    with pytest.raises(PartitionError):
        partition_hierarchy(h, 2, {})  # MHs exist but no attachments
