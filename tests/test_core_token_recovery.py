"""Tests for Token-Regeneration and Multiple-Token resolution (§4.2.1)."""

from repro.metrics.order_checker import OrderChecker

from helpers import small_net


def run_crash_scenario(seed: int, victim: str, crash_at: float = 2_000.0,
                       until: float = 12_000.0):
    sim, net = small_net(seed=seed, n_br=4)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:1", rate_per_sec=20)
    net.start()
    src.start()
    sim.schedule_at(crash_at, lambda: net.crash_ne(victim))
    sim.run(until=until)
    src.stop()
    sim.run(until=until + 4_000)
    return sim, net, src, checker


def test_crash_non_corresponding_node_recovers():
    sim, net, src, checker = run_crash_scenario(seed=1, victim="br:3")
    checker.assert_ok()
    regens = sum(ne.tokens_regenerated for ne in net.nes.values())
    assert regens == 1  # exactly one token regenerated
    # Ordering continued: surviving MHs keep delivering after the crash.
    survivors = [m for m in net.member_hosts()]
    assert all(m.delivered_count > 0 for m in survivors)
    assert max(m.delivered_count for m in survivors) >= src.sent - 10


def test_crash_while_holding_token_detected():
    # Crash whichever node holds the token at the crash instant.
    sim, net = small_net(seed=7, n_br=4)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)
    net.start()
    src.start()

    def crash_holder():
        holder = next((ne for ne in net.top_ring_nes()
                       if ne.held_token is not None), None)
        victim = holder.id if holder is not None else "br:2"
        net.crash_ne(victim)

    sim.schedule_at(2_000, crash_holder)
    sim.run(until=14_000)
    src.stop()
    sim.run(until=18_000)
    checker.assert_ok()
    regens = sum(ne.tokens_regenerated for ne in net.nes.values())
    assert regens >= 1
    # The ring keeps making ordering progress after regeneration.
    max_next = max(
        (ne.new_token.next_global_seq for ne in net.top_ring_nes()
         if ne.new_token is not None),
        default=0,
    )
    assert max_next >= src.sent - 10


def test_token_loss_signal_ignored_when_running_well():
    sim, net = small_net(seed=2)
    net.start()
    sim.run(until=1_000)
    ne = net.top_ring_nes()[0]
    assert ne.ordering_runs_well()
    before = sum(n.tokens_regenerated for n in net.top_ring_nes())
    ne.signal_token_loss()
    sim.run(until=2_000)
    after = sum(n.tokens_regenerated for n in net.top_ring_nes())
    assert after == before  # no spurious regeneration


def test_regeneration_resumes_from_freshest_snapshot():
    sim, net, src, checker = run_crash_scenario(seed=11, victim="br:2")
    checker.assert_ok()
    # No global sequence was assigned twice to different payloads —
    # the checker's agreement invariant covers this; also assert the
    # sequence space is gap-free at the remaining top nodes.
    tops = net.top_ring_nes()
    rears = {ne.mq.rear for ne in tops}
    assert len(rears) == 1


def test_multiple_token_resolution_on_merge():
    sim, net = small_net(seed=4, n_br=4)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=15)
    net.start()
    src.start()
    sim.run(until=2_000)

    # Partition the top ring; sources live in the 'a' half.
    net.maintenance.split_top_ring(["br:0", "br:1"], ["br:2", "br:3"])
    sim.run(until=5_000)
    # The b half regenerates its own token (token loss there).
    # Merge back: Multiple-Token resolution must leave exactly one.
    net.maintenance.merge_top_rings("ring:br.a", "ring:br.b")
    sim.run(until=12_000)
    src.stop()
    sim.run(until=16_000)
    checker.assert_ok()
    live_tokens = sum(1 for ne in net.top_ring_nes()
                      if ne.held_token is not None)
    assert live_tokens <= 1
    # Ordering still progresses post-merge.
    assert max(m.delivered_count for m in net.member_hosts()) >= src.sent - 10
