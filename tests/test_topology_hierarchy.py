"""Unit tests for the hierarchy, builder, and maintenance."""

import pytest

from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.topology.builder import (
    HierarchySpec,
    build_hierarchy,
    initial_attachments,
    provision_links,
)
from repro.topology.hierarchy import Hierarchy
from repro.topology.maintenance import TopologyMaintenance
from repro.topology.ring import LogicalRing
from repro.topology.tiers import Tier


# ---------------------------------------------------------------------------
# Spec + builder
# ---------------------------------------------------------------------------
def test_spec_counts():
    spec = HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=2, mhs_per_ap=2)
    assert spec.n_ag == 6
    assert spec.n_ap == 12
    assert spec.n_mh == 24
    assert spec.total_nes == 3 + 6 + 12


def test_spec_validation():
    with pytest.raises(ValueError):
        HierarchySpec(n_br=0)
    with pytest.raises(ValueError):
        HierarchySpec(ags_per_br=0)
    with pytest.raises(ValueError):
        HierarchySpec(aps_per_ag=-1)


def test_build_regular_hierarchy_validates():
    h = build_hierarchy(HierarchySpec())
    h.validate()  # no raise


def test_top_ring_is_br_ring():
    h = build_hierarchy(HierarchySpec(n_br=4))
    assert h.top_ring.size == 4
    assert all(h.tier_of[n] is Tier.BR for n in h.top_ring)


def test_ag_ring_leaders_are_br_children():
    h = build_hierarchy(HierarchySpec(n_br=2, ags_per_br=3))
    for rid, ring in h.rings.items():
        if rid == h.top_ring_id:
            continue
        parent = h.parent[ring.leader]
        assert h.tier_of[parent] is Tier.BR


def test_aps_have_ag_parents():
    h = build_hierarchy(HierarchySpec())
    for ap in h.nodes_of_tier(Tier.AP):
        assert h.tier_of[h.parent[ap]] is Tier.AG


def test_mh_count_and_initial_attachments():
    spec = HierarchySpec(n_br=2, ags_per_br=2, aps_per_ag=2, mhs_per_ap=3)
    h = build_hierarchy(spec)
    att = initial_attachments(spec)
    assert len(h.nodes_of_tier(Tier.MH)) == spec.n_mh
    assert len(att) == spec.n_mh
    assert all(h.tier_of[ap] is Tier.AP for ap in att.values())


def test_candidate_parents_configured():
    h = build_hierarchy(HierarchySpec())
    for ap in h.nodes_of_tier(Tier.AP):
        cands = h.candidate_parents[ap]
        assert cands[0] == h.parent[ap]  # primary first
        assert len(cands) >= 2


# ---------------------------------------------------------------------------
# Neighbor views
# ---------------------------------------------------------------------------
def test_neighbor_view_top_ring_member():
    h = build_hierarchy(HierarchySpec(n_br=3))
    v = h.neighbor_view("br:1")
    assert v.in_top_ring
    assert v.previous == "br:0" and v.next == "br:2"
    assert v.leader == "br:0"
    assert not v.is_leader


def test_neighbor_view_leader_flag():
    h = build_hierarchy(HierarchySpec())
    v = h.neighbor_view("br:0")
    assert v.is_leader


def test_neighbor_view_ap_has_parent_no_ring():
    h = build_hierarchy(HierarchySpec())
    v = h.neighbor_view("ap:0.0.0")
    assert v.ring_id is None
    assert v.parent == "ag:0.0"
    assert v.next is None


def test_neighbor_view_children():
    h = build_hierarchy(HierarchySpec(aps_per_ag=3))
    v = h.neighbor_view("ag:0.0")
    assert len(v.children) == 3


def test_all_views_excludes_mhs():
    h = build_hierarchy(HierarchySpec())
    views = h.all_views()
    assert not any(v.tier is Tier.MH for v in views.values())


# ---------------------------------------------------------------------------
# Link provisioning
# ---------------------------------------------------------------------------
def test_provision_links_covers_adjacencies():
    sim = Simulator()
    fabric = Fabric(sim)
    h = build_hierarchy(HierarchySpec())
    provision_links(fabric, h)
    # Every ring adjacency has a link.
    for ring in h.rings.values():
        for node in ring:
            if ring.size > 1:
                assert fabric.link(node, ring.next_of(node)) is not None
    # Every tree link exists.
    for child, parent in h.parent.items():
        assert fabric.link(child, parent) is not None


def test_provision_links_idempotent():
    sim = Simulator()
    fabric = Fabric(sim)
    h = build_hierarchy(HierarchySpec())
    n1 = provision_links(fabric, h)
    n2 = provision_links(fabric, h)
    assert n1 > 0 and n2 == 0


# ---------------------------------------------------------------------------
# Maintenance
# ---------------------------------------------------------------------------
def small_hierarchy() -> Hierarchy:
    return build_hierarchy(HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=1,
                                         mhs_per_ap=0))


def test_remove_non_leader_ring_member():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    maint.remove_ne("br:1")
    assert "br:1" not in h.top_ring
    assert h.top_ring.size == 2
    h.validate()


def test_remove_leader_reelects_and_emits():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    records = maint.remove_ne("br:0")
    kinds = [r.kind for r in records]
    assert "leader_change" in kinds
    assert h.top_ring.leader == "br:1"
    h.validate()


def test_remove_ag_leader_moves_tree_link():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    ring = h.rings["ring:ag.0"]
    old_leader = ring.leader
    br = h.parent[old_leader]
    maint.remove_ne(old_leader)
    assert h.parent[ring.leader] == br
    h.validate()


def test_remove_reparents_children_to_candidates():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    ap = "ap:0.0.0"
    old_parent = h.parent[ap]
    records = maint.remove_ne(old_parent)
    new_parent = h.parent.get(ap)
    assert new_parent is not None and new_parent != old_parent
    assert any(r.kind == "reparent" and r["child"] == ap for r in records)


def test_remove_unknown_node_raises():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    with pytest.raises(KeyError):
        maint.remove_ne("br:99")


def test_listeners_receive_records():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    seen = []
    maint.subscribe(seen.append)
    maint.remove_ne("br:2")
    assert seen
    assert seen[-1].kind == "node_removed"


def test_join_ring_inserts():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    maint.join_ring("br:9", h.top_ring_id, Tier.BR, after="br:0")
    assert h.top_ring.members.index("br:9") == 1
    assert h.ring_of["br:9"] == h.top_ring_id


def test_attach_ap():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    maint.attach_ap("ap:9.9.9", "ag:0.0", candidates=["ag:0.0", "ag:0.1"])
    assert h.parent["ap:9.9.9"] == "ag:0.0"
    h.validate()


def test_split_and_merge_top_ring():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    maint.split_top_ring(["br:0", "br:1"], ["br:2"])
    assert h.top_ring.size == 2
    assert len(h.rings) == 2 + 3  # 2 BR halves + 3 AG rings (one per BR)
    maint.merge_top_rings("ring:br.a", "ring:br.b")
    assert h.top_ring.size == 3
    h.validate()


def test_split_requires_partition():
    h = small_hierarchy()
    maint = TopologyMaintenance(h)
    with pytest.raises(ValueError):
        maint.split_top_ring(["br:0"], ["br:1"])  # br:2 unassigned
    with pytest.raises(ValueError):
        maint.split_top_ring(["br:0", "br:1"], ["br:1", "br:2"])  # overlap


def test_singleton_ring_removal_drops_ring():
    h = Hierarchy()
    h.add_ring(LogicalRing("ring:solo", ["br:0"]), Tier.BR, top=True)
    maint = TopologyMaintenance(h)
    records = maint.remove_ne("br:0")
    assert any(r.kind == "ring_dropped" for r in records)
    assert h.top_ring_id is None
