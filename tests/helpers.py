"""Scenario helpers shared by protocol-level tests."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.order_checker import OrderChecker
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec


def small_net(
    seed: int = 1,
    n_br: int = 3,
    ags_per_br: int = 2,
    aps_per_ag: int = 2,
    mhs_per_ap: int = 1,
    cfg: Optional[ProtocolConfig] = None,
) -> Tuple[Simulator, RingNet]:
    """A compact RingNet instance ready to start."""
    sim = Simulator(seed=seed)
    spec = HierarchySpec(n_br=n_br, ags_per_br=ags_per_br,
                         aps_per_ag=aps_per_ag, mhs_per_ap=mhs_per_ap)
    net = RingNet.build(sim, spec, cfg=cfg)
    return sim, net


def run_with_traffic(
    seed: int = 1,
    n_sources: int = 1,
    rate: float = 20.0,
    until: float = 5_000.0,
    check_order: bool = True,
    **net_kw,
) -> Tuple[Simulator, RingNet, Optional[OrderChecker]]:
    """Build, start, attach sources, run, and (optionally) verify order."""
    sim, net = small_net(seed=seed, **net_kw)
    checker = OrderChecker(sim.trace) if check_order else None
    top = net.hierarchy.top_ring.members
    sources = [net.add_source(corresponding=top[i % len(top)], rate_per_sec=rate)
               for i in range(n_sources)]
    net.start()
    for s in sources:
        s.start()
    sim.run(until=until)
    if checker is not None:
        checker.assert_ok()
    return sim, net, checker
