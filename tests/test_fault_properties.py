"""Property-based fault injection: total order survives random faults.

Hypothesis draws small fault schedules (which NE to crash, when; which
MHs to hand off, where) and the protocol must keep every total-order
invariant over the surviving members.  This is the repo's broadest
correctness net: any state-machine interaction bug between ordering,
forwarding, delivery, gap recovery, token recovery, and topology
maintenance tends to surface here as an OrderChecker violation.
"""

from hypothesis import given, settings, strategies as st

from repro.core.protocol import RingNet
from repro.metrics.order_checker import OrderChecker
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec
from repro.topology.tiers import Tier

SPEC = HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)


@st.composite
def fault_schedules(draw):
    """(crash victim index or None, crash time, handoff script)."""
    crash_idx = draw(st.one_of(st.none(), st.integers(0, 8)))
    crash_at = draw(st.floats(min_value=500.0, max_value=4_000.0))
    n_handoffs = draw(st.integers(0, 4))
    handoffs = [
        (draw(st.floats(min_value=300.0, max_value=5_000.0)),
         draw(st.integers(0, 11)),   # which MH
         draw(st.integers(0, 11)))   # which AP
        for _ in range(n_handoffs)
    ]
    return crash_idx, crash_at, handoffs


@given(schedule=fault_schedules(), seed=st.integers(0, 2**16))
@settings(max_examples=12, deadline=None)
def test_total_order_survives_random_faults(schedule, seed):
    crash_idx, crash_at, handoffs = schedule
    sim = Simulator(seed=seed)
    net = RingNet.build(sim, SPEC)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)

    # Crash any NE except br:0 (the corresponding node keeps its source;
    # crashing it would just stop the workload, not stress recovery).
    crashables = [n for n in sorted(net.nes) if n != "br:0"]
    if crash_idx is not None:
        victim = crashables[crash_idx % len(crashables)]
        sim.schedule_at(crash_at, lambda v=victim: net.crash_ne(v))

    mhs = sorted(net.mobile_hosts)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    for at, mh_i, ap_i in handoffs:
        mh = mhs[mh_i % len(mhs)]
        ap = aps[ap_i % len(aps)]
        def do_handoff(mh=mh, ap=ap):
            # The target AP may have crashed already; skip if so.
            if ap in net.nes and net.nes[ap].alive:
                net.handoff(mh, ap)
        sim.schedule_at(at, do_handoff)

    net.start()
    src.start()
    sim.run(until=8_000)
    src.stop()
    sim.run(until=14_000)

    checker.assert_ok()
    # At least one member kept receiving through the chaos.
    counts = [m.delivered_count for m in net.member_hosts()]
    assert counts and max(counts) > 0


def test_ap_crash_then_handoff_restores_service():
    """A bottom-NE (AP) crash: the MH is stranded until it re-associates
    with a live AP, after which ordered delivery resumes with gap
    accounting intact."""
    sim = Simulator(seed=41)
    net = RingNet.build(sim, SPEC)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=25)
    net.start()
    src.start()
    mh_id = "mh:0.0.0.0"
    sim.schedule_at(1_500, lambda: net.crash_ne("ap:0.0.0"))
    # Cell died; mobility re-associates the MH a little later.
    sim.schedule_at(2_200, lambda: net.handoff(mh_id, "ap:0.0.1"))
    sim.run(until=8_000)
    src.stop()
    sim.run(until=14_000)
    checker.assert_ok()
    mh = net.mobile_hosts[mh_id]
    assert mh.handoffs == 1
    # Everything either delivered or gap-accounted; service resumed.
    assert mh.delivered_count + mh.tombstones >= src.sent - 5
    assert mh.delivered_seqs()[-1] >= src.sent - 10


def test_ag_non_leader_crash_is_transparent_to_other_subtrees():
    sim = Simulator(seed=43)
    net = RingNet.build(sim, SPEC)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)
    net.start()
    src.start()
    # ag:0.1 is a non-leader ring member with AP children.
    sim.schedule_at(2_000, lambda: net.crash_ne("ag:0.1"))
    sim.run(until=8_000)
    src.stop()
    sim.run(until=14_000)
    checker.assert_ok()
    # Members in untouched subtrees saw the entire stream.
    untouched = [m for g, m in net.mobile_hosts.items()
                 if g.startswith("mh:1") or g.startswith("mh:2")]
    assert all(m.delivered_count >= src.sent - 5 for m in untouched)


def test_double_crash_distinct_tiers():
    sim = Simulator(seed=47)
    net = RingNet.build(sim, SPEC)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=15)
    net.start()
    src.start()
    sim.schedule_at(1_500, lambda: net.crash_ne("br:2"))
    sim.schedule_at(3_000, lambda: net.crash_ne("ag:1.0"))
    sim.run(until=10_000)
    src.stop()
    sim.run(until=16_000)
    checker.assert_ok()
    # The ring shrank but kept ordering the full stream.
    assert net.hierarchy.top_ring.size == 2
    best = max(m.delivered_count for m in net.member_hosts())
    assert best >= src.sent - 5
