"""Tests for cells, movement models, and the handoff driver."""

import numpy as np
import pytest

from repro.mobility.cells import CellGrid
from repro.mobility.handoff import HandoffDriver
from repro.mobility.models import DirectionalWalk, RandomWalk
from repro.topology.tiers import Tier

from helpers import small_net


# ---------------------------------------------------------------------------
# CellGrid
# ---------------------------------------------------------------------------
def test_grid_requires_exact_ap_count():
    with pytest.raises(ValueError):
        CellGrid(2, 2, ["a", "b", "c"])


def test_grid_mapping_roundtrip():
    grid = CellGrid(2, 2, ["a", "b", "c", "d"])
    assert grid.ap_at((0, 0)) == "a"
    assert grid.ap_at((1, 1)) == "d"
    assert grid.cell_of("c") == (0, 1)
    assert grid.cell_of("zzz") is None


def test_grid_neighbors_interior_and_corner():
    grid = CellGrid(3, 3, [f"ap{i}" for i in range(9)])
    assert len(grid.neighbors((1, 1))) == 4
    assert len(grid.neighbors((0, 0))) == 2
    assert len(grid.neighbors((2, 1))) == 3


def test_neighbor_aps():
    grid = CellGrid(2, 2, ["a", "b", "c", "d"])
    assert set(grid.neighbor_aps("a")) == {"b", "c"}


def test_square_for_pads():
    grid = CellGrid.square_for(["a", "b", "c"])
    assert grid.cols * grid.rows >= 3
    assert grid.ap_at(grid.cells[-1]) == "c"  # padded with last AP


def test_square_for_empty_rejected():
    with pytest.raises(ValueError):
        CellGrid.square_for([])


# ---------------------------------------------------------------------------
# Movement models
# ---------------------------------------------------------------------------
def test_random_walk_moves_to_neighbors():
    grid = CellGrid(3, 3, [f"ap{i}" for i in range(9)])
    rng = np.random.default_rng(1)
    model = RandomWalk(mean_dwell_ms=100.0)
    cell = (1, 1)
    for _ in range(50):
        dwell, nxt = model.next_move(rng, grid, cell, {})
        assert dwell >= 0
        assert nxt in grid.neighbors(cell)


def test_random_walk_stay_prob():
    grid = CellGrid(3, 3, [f"ap{i}" for i in range(9)])
    rng = np.random.default_rng(1)
    model = RandomWalk(mean_dwell_ms=100.0, stay_prob=0.99)
    stays = sum(
        1 for _ in range(100)
        if model.next_move(rng, grid, (1, 1), {})[1] == (1, 1)
    )
    assert stays > 80


def test_random_walk_validation():
    with pytest.raises(ValueError):
        RandomWalk(mean_dwell_ms=0)
    with pytest.raises(ValueError):
        RandomWalk(stay_prob=1.0)


def test_directional_walk_keeps_heading():
    grid = CellGrid(10, 1, [f"ap{i}" for i in range(10)])
    rng = np.random.default_rng(2)
    model = DirectionalWalk(mean_dwell_ms=100.0, persistence=1.0)
    state = {}
    cell = (0, 0)
    _, cell = model.next_move(rng, grid, cell, state)  # establishes heading
    assert cell == (1, 0)
    for expected_x in (2, 3, 4):
        _, cell = model.next_move(rng, grid, cell, state)
        assert cell == (expected_x, 0)


def test_directional_walk_validation():
    with pytest.raises(ValueError):
        DirectionalWalk(persistence=1.5)


# ---------------------------------------------------------------------------
# HandoffDriver end-to-end
# ---------------------------------------------------------------------------
def test_driver_moves_mhs_and_logs():
    sim, net = small_net(mhs_per_ap=1, seed=6)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid.square_for(aps)
    driver = HandoffDriver(net, grid, RandomWalk(mean_dwell_ms=300.0))
    net.start()
    for mh_id, mh in net.mobile_hosts.items():
        driver.track(mh_id, mh.ap)
    sim.run(until=5_000)
    assert driver.handoffs_driven > 0
    assert len(driver.log) == driver.handoffs_driven
    # Driver's belief matches the MH's actual AP.
    for mh_id, mh in net.mobile_hosts.items():
        assert grid.ap_at(driver.cell_of(mh_id)) == mh.ap


def test_driver_stop_freezes_mh():
    sim, net = small_net(mhs_per_ap=1, seed=6)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid.square_for(aps)
    driver = HandoffDriver(net, grid, RandomWalk(mean_dwell_ms=200.0))
    net.start()
    mh_id = "mh:0.0.0.0"
    driver.track(mh_id, net.mobile_hosts[mh_id].ap)
    sim.run(until=1_000)
    driver.stop(mh_id)
    moved = net.mobile_hosts[mh_id].handoffs
    sim.run(until=4_000)
    assert net.mobile_hosts[mh_id].handoffs == moved


def test_driver_rejects_unknown_ap():
    sim, net = small_net(mhs_per_ap=1)
    grid = CellGrid(1, 1, ["ap:0.0.0"])
    driver = HandoffDriver(net, grid, RandomWalk())
    with pytest.raises(ValueError):
        driver.track("mh:x", "ap:not.on.grid")


def test_order_preserved_under_continuous_mobility():
    from repro.metrics.order_checker import OrderChecker
    sim, net = small_net(mhs_per_ap=1, seed=8, n_br=3, ags_per_br=2,
                         aps_per_ag=2)
    checker = OrderChecker(sim.trace)
    src = net.add_source(rate_per_sec=20)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid.square_for(aps)
    driver = HandoffDriver(net, grid, RandomWalk(mean_dwell_ms=400.0))
    net.start()
    src.start()
    for mh_id, mh in net.mobile_hosts.items():
        driver.track(mh_id, mh.ap)
    sim.run(until=8_000)
    checker.assert_ok()
    assert driver.handoffs_driven > 10
