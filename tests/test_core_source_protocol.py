"""Tests for MulticastSource and the RingNet facade."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.core.source import MulticastSource
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec
from repro.topology.tiers import Tier

from helpers import small_net


# ---------------------------------------------------------------------------
# Source
# ---------------------------------------------------------------------------
def test_cbr_cadence_exact():
    sim, net = small_net()
    src = net.add_source(rate_per_sec=10)  # every 100 ms
    net.start()
    src.start()
    sim.run(until=1_000)
    assert src.sent == 10


def test_poisson_rate_approximate():
    sim, net = small_net()
    src = net.add_source(rate_per_sec=50, pattern="poisson")
    net.start()
    src.start()
    sim.run(until=10_000)
    assert 350 <= src.sent <= 650  # ~500 expected


def test_local_seq_monotone_contiguous():
    sim, net = small_net()
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=2_000)
    assert src.local_seq == src.sent


def test_source_stop_halts():
    sim, net = small_net()
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=1_000)
    src.stop()
    n = src.sent
    sim.run(until=3_000)
    assert src.sent == n


def test_source_invalid_params():
    sim, net = small_net()
    with pytest.raises(ValueError):
        net.add_source(rate_per_sec=0)
    with pytest.raises(ValueError):
        MulticastSource(net.fabric, "src:z", net.cfg, "br:0",
                        rate_per_sec=5, pattern="weird")


# ---------------------------------------------------------------------------
# RingNet facade
# ---------------------------------------------------------------------------
def test_build_creates_all_nes_and_mhs():
    sim = Simulator(seed=1)
    spec = HierarchySpec(n_br=2, ags_per_br=2, aps_per_ag=2, mhs_per_ap=2)
    net = RingNet.build(sim, spec)
    assert len(net.nes) == spec.total_nes
    assert len(net.mobile_hosts) == spec.n_mh


def test_round_robin_source_placement():
    sim, net = small_net(n_br=3)
    s0 = net.add_source(rate_per_sec=1)
    s1 = net.add_source(rate_per_sec=1)
    s2 = net.add_source(rate_per_sec=1)
    assert {s0.corresponding, s1.corresponding, s2.corresponding} == \
        set(net.hierarchy.top_ring.members)


def test_start_idempotent():
    sim, net = small_net()
    net.start()
    net.start()  # must not inject a second token
    sim.run(until=1_000)
    held = sum(ne.tokens_held for ne in net.top_ring_nes())
    rotations_upper = 1_000 / (net.cfg.token_hold_time + 2.0) + 5
    assert held < rotations_upper * 1.5


def test_buffer_reports_shape():
    sim, net = small_net()
    net.start()
    sim.run(until=500)
    reports = net.buffer_reports()
    assert len(reports) == len(net.nes)
    for r in reports:
        assert {"node", "wq", "mq", "wq_peak", "mq_peak"} <= set(r)


def test_member_hosts_excludes_left():
    sim, net = small_net(mhs_per_ap=1)
    net.start()
    sim.run(until=500)
    all_members = net.member_hosts()
    all_members[0].leave()
    sim.run(until=600)
    assert len(net.member_hosts()) == len(all_members) - 1


def test_crash_ne_triggers_maintenance():
    sim, net = small_net(n_br=3)
    net.start()
    sim.run(until=500)
    net.crash_ne("br:2", detection_delay=20.0)
    sim.run(until=1_000)
    assert "br:2" not in net.hierarchy.tier_of
    assert net.hierarchy.top_ring.size == 2


def test_crash_ag_leader_reparents_ring():
    sim, net = small_net()
    net.start()
    sim.run(until=500)
    h = net.hierarchy
    ring = h.rings["ring:ag.0"]
    old_leader = ring.leader
    parent_br = h.parent[old_leader]
    net.crash_ne(old_leader, detection_delay=20.0)
    sim.run(until=1_500)
    new_leader = ring.leader
    assert new_leader != old_leader
    assert h.parent[new_leader] == parent_br
    # The BR delivers to the new leader from now on.
    assert net.nes[parent_br].has_child(new_leader)


def test_delivery_survives_ag_leader_crash():
    sim, net = small_net(seed=13)
    from repro.metrics.order_checker import OrderChecker
    checker = OrderChecker(sim.trace)
    src = net.add_source(rate_per_sec=15)
    net.start()
    src.start()
    sim.schedule_at(2_000, lambda: net.crash_ne("ag:0.0"))
    sim.run(until=8_000)
    src.stop()
    sim.run(until=14_000)
    checker.assert_ok()
    # MHs under the crashed AG's reparented APs keep receiving.
    survivors = [m for m in net.member_hosts()]
    assert max(m.delivered_count for m in survivors) >= src.sent - 10


def test_handoff_creates_wireless_link_on_demand():
    sim, net = small_net(mhs_per_ap=1)
    net.start()
    sim.run(until=200)
    assert net.fabric.link("mh:0.0.0.0", "ap:1.1.0") is None
    net.handoff("mh:0.0.0.0", "ap:1.1.0")
    assert net.fabric.link("mh:0.0.0.0", "ap:1.1.0") is not None


def test_total_app_deliveries_accumulates():
    sim, net = small_net(mhs_per_ap=1)
    src = net.add_source(rate_per_sec=10)
    net.start()
    src.start()
    sim.run(until=2_000)
    assert net.total_app_deliveries() > 0


def test_custom_config_propagates_to_nes():
    cfg = ProtocolConfig(tau=2.5, delivery_window=4)
    sim, net = small_net(cfg=cfg)
    assert all(ne.cfg.tau == 2.5 for ne in net.nes.values())
