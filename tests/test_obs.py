"""Unit tests for repro.obs: registry, profiler, session lifecycle."""

import io
import json
import gzip
import math
import os

import pytest

import repro.obs.session as session_mod
from repro.experiments import registry as scenario_registry
from repro.experiments.runner import build_scenario
from repro.obs.profiler import (DispatchProfiler, handler_ident, kind_of,
                                render_top)
from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry,
                                diff_counts, merge_counter_dicts)
from repro.obs.report import load_report, load_timeline
from repro.obs.session import ObsSession
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Registry instruments
# ----------------------------------------------------------------------
def test_counter_inc():
    c = Counter("x")
    c.inc()
    c.inc(41)
    assert c.value == 42


def test_gauge_set_and_max():
    g = Gauge("g")
    g.set(5.0)
    g.set(3.0)
    assert g.value == 3.0 and g.max == 5.0
    g.update_max(2.0)
    assert g.value == 3.0  # not a new max: value untouched
    g.update_max(9.0)
    assert g.value == 9.0 and g.max == 9.0


def test_histogram_buckets_are_log2():
    h = Histogram("h")
    for v in (0.0, 0.75, 1.5, 3.0, 3.9):
        h.observe(v)
    # 0.0 -> bucket 0; 0.75 -> (0.5,1] -> 0; 1.5 -> 1; 3.0/3.9 -> 2
    assert h.buckets == {0: 2, 1: 1, 2: 2}
    assert h.count == 5
    assert h.min == 0.0 and h.max == 3.9
    assert h.mean == pytest.approx(sum((0.0, 0.75, 1.5, 3.0, 3.9)) / 5)


def test_histogram_quantile_is_bucket_upper_edge():
    h = Histogram("h")
    for v in (1.5,) * 9 + (100.0,):
        h.observe(v)
    assert h.quantile(0.5) == 2.0
    assert h.quantile(0.99) == float(2 ** math.frexp(100.0)[1])


def test_histogram_negative_values_use_underflow_bucket():
    h = Histogram("h")
    for v in (-5.0, -0.25, 0.0, 0.75):
        h.observe(v)
    # Negatives must NOT alias into bucket 0 alongside the zeros.
    assert h.underflow == 2
    assert h.buckets == {0: 2}
    assert h.count == 4
    assert h.min == -5.0 and h.max == 0.75
    snap = h.snapshot()
    assert snap["underflow"] == 2
    assert snap["buckets"] == {"0": 2}


def test_histogram_quantile_accounts_for_underflow_mass():
    h = Histogram("h")
    for v in (-1.0,) * 6 + (1.5,) * 4:
        h.observe(v)
    # 60% of the mass is negative: the median sits in the underflow
    # slot (upper edge 0.0), while p90 reaches the [1, 2) bucket.
    assert h.quantile(0.5) == 0.0
    assert h.quantile(0.9) == 2.0
    # All-negative sample: every quantile reads 0.0, never 1.0.
    g = Histogram("g")
    for v in (-3.0, -2.0, -1.0):
        g.observe(v)
    assert g.quantile(0.5) == 0.0
    assert g.quantile(0.99) == 0.0


def test_histogram_no_underflow_key_for_nonnegative_sample():
    h = Histogram("h")
    for v in (0.0, 1.0, 2.0):
        h.observe(v)
    assert "underflow" not in h.snapshot()


def test_histogram_empty_snapshot():
    assert Histogram("h").snapshot() == {"count": 0}


def test_registry_creates_on_first_use():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 2)
    reg.set_gauge("b", 7)
    reg.gauge_max("c", 3)
    reg.gauge_max("c", 1)
    reg.observe("d", 4.0)
    assert reg.counters["a"].value == 3
    assert reg.gauges["b"].value == 7
    assert reg.gauges["c"].max == 3
    assert reg.hists["d"].count == 1
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["gauges"]["c"] == {"value": 3, "max": 3}
    assert snap["histograms"]["d"]["count"] == 1


def test_merge_and_diff_counts():
    assert merge_counter_dicts([{"a": 1, "b": 2}, {"b": 3, "c": 1}]) == \
        {"a": 1, "b": 5, "c": 1}
    assert diff_counts({"a": 5, "b": 2}, {"a": 3}) == {"a": 2, "b": 2}
    assert diff_counts({"a": 3}, {"a": 3}) == {}


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class _Handler:
    def fire(self):
        pass


def test_profiler_pools_bound_methods():
    p = DispatchProfiler(stride=4)
    a, b = _Handler(), _Handler()
    p.record(a.fire, 0.001)
    p.record(b.fire, 0.003)
    rows = p.summary()
    assert len(rows) == 1
    row = rows[0]
    assert row["handler"] == "_Handler.fire"
    assert row["samples"] == 2
    assert row["est_events"] == 8
    assert row["share"] == 1.0
    assert row["wall_ms_est"] == pytest.approx(0.004 * 4 * 1e3)


def test_profiler_rejects_bad_stride():
    with pytest.raises(ValueError):
        DispatchProfiler(stride=0)


def test_handler_ident_and_kind():
    h = _Handler()
    assert handler_ident(h.fire) is _Handler.fire
    assert kind_of(h.fire) == "test_obs"  # module sans repro. prefix


def test_render_top():
    p = DispatchProfiler(stride=2)
    p.record(_Handler().fire, 0.002)
    text = render_top(p.summary())
    assert "_Handler.fire" in text and "share" in text
    assert render_top([]) == "(no profiler samples)"


# ----------------------------------------------------------------------
# Session lifecycle
# ----------------------------------------------------------------------
def _quickstart_spec(duration_ms=1200.0):
    return scenario_registry.get("quickstart", duration_ms=duration_ms,
                                 warmup_ms=0.0)


def _run_session(spec, **kw):
    sim = Simulator(seed=spec.seed)
    scenario = build_scenario(spec, sim=sim)
    session = ObsSession(sim, horizon_ms=spec.duration_ms, **kw)
    scenario.run()
    session.finish()
    return sim, session


def test_session_validates_arguments():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError):
        ObsSession(sim, horizon_ms=0.0)
    with pytest.raises(ValueError):
        ObsSession(sim, horizon_ms=100.0, window_ms=-1.0)


def test_session_attaches_and_detaches():
    sim = Simulator(seed=1)
    assert sim.obs is None and sim.obs_hook is None
    saved_counting = sim.trace.counting
    session = ObsSession(sim, horizon_ms=100.0)
    assert sim.obs is session.registry
    assert sim.obs_hook is session
    assert sim.trace.counting is True
    session.finish()
    session.finish()  # idempotent
    assert sim.obs is None and sim.obs_hook is None
    assert sim.trace.counting is saved_counting


def test_session_restores_disabled_counting():
    sim = Simulator(seed=1)
    sim.trace.counting = False  # benchmark configuration
    session = ObsSession(sim, horizon_ms=100.0)
    assert sim.trace.counting is True
    session.finish()
    assert sim.trace.counting is False


def test_session_window_accounting_is_exact():
    spec = _quickstart_spec()
    sim, session = _run_session(spec)
    rep = session.report()
    assert rep["schema"] == session_mod.OBS_SCHEMA
    assert rep["events"] == sim.events_processed
    assert sum(row["events"] for row in session.rows) == rep["events"]
    assert rep["windows"] == len(session.rows)
    # Windows tile the horizon: monotone edges, w indexes consecutive.
    for i, row in enumerate(session.rows):
        assert row["w"] == i
        assert row["t1"] >= row["t0"]
    assert rep["engine"]["events_processed"] == sim.events_processed


def test_session_collects_protocol_metrics():
    _, session = _run_session(_quickstart_spec())
    counters = session.registry.snapshot()["counters"]
    assert counters["token.holds"] > 0
    assert counters["ordering.assigned"] > 0
    hists = session.registry.snapshot()["histograms"]
    assert hists["token.hold_ms"]["count"] > 0
    assert hists["engine.heap_depth"]["count"] > 0


def test_session_profiler_names_cost_centers():
    _, session = _run_session(_quickstart_spec())
    top = session.profiler.summary(top=5)
    assert len(top) == 5
    handlers = {row["handler"] for row in top}
    assert "Fabric._arrive" in handlers
    # Shares are rounded to 4 decimals per handler, so the sum can be
    # off by up to 5e-5 per row — bound by the row count, not 1e-6.
    rows = session.profiler.summary()
    assert abs(sum(r["share"] for r in rows) - 1.0) <= 5e-5 * len(rows)


def test_session_write_and_load_artifacts(tmp_path):
    spec = _quickstart_spec()
    _, session = _run_session(spec)
    paths = session.write(out_dir=str(tmp_path))
    report = load_report(paths["report"])
    assert report["name"] == "run"
    assert os.path.basename(paths["timeline"]) == report["timeline"]
    rows = load_timeline(paths["timeline"])
    assert rows == session.rows
    # Artifacts are valid JSON / gzip-JSONL on disk.
    with open(paths["report"], encoding="utf-8") as fh:
        json.load(fh)
    with gzip.open(paths["timeline"], "rt", encoding="utf-8") as fh:
        assert all(json.loads(line) for line in fh)


def test_progress_heartbeat_writes_to_sink(monkeypatch):
    monkeypatch.setattr(session_mod, "PROGRESS_INTERVAL_S", 0.0)
    sink = io.StringIO()
    spec = _quickstart_spec(duration_ms=600.0)
    _, session = _run_session(spec, progress=True, progress_sink=sink)
    out = sink.getvalue()
    assert "[obs]" in out and "ev/s" in out


def test_disabled_fast_path_unchanged():
    """Without a session the engine must not consult any hook state."""
    spec = _quickstart_spec(duration_ms=600.0)
    sim = Simulator(seed=spec.seed)
    scenario = build_scenario(spec, sim=sim)
    scenario.run()
    assert sim.obs is None and sim.obs_hook is None
    assert sim.events_processed > 0
