"""Tests for the five comparator protocols."""

import pytest

from repro.baselines.hostview import HostViewProtocol
from repro.baselines.relm import RelMProtocol
from repro.baselines.sequencer import SequencerMulticast
from repro.baselines.single_ring import SingleRingMulticast
from repro.baselines.unordered import UnorderedRingNet
from repro.metrics.collectors import LatencyCollector
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec


SPEC = HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)


# ---------------------------------------------------------------------------
# Unordered RingNet (Remark 3 ablation)
# ---------------------------------------------------------------------------
def test_unordered_delivers_everything():
    sim = Simulator(seed=3)
    net = UnorderedRingNet.build(sim, SPEC)
    src = net.add_source(rate_per_sec=20)
    src.start()
    sim.run(until=4_000)
    src.stop()
    sim.run(until=8_000)
    for m in net.member_hosts():
        assert m.delivered_count == src.sent


def test_unordered_no_duplicates():
    sim = Simulator(seed=3)
    net = UnorderedRingNet.build(sim, SPEC)
    src = net.add_source(rate_per_sec=30)
    src.start()
    sim.run(until=3_000)
    for m in net.member_hosts():
        keys = [(p[1][0], p[1][1]) for p in m.app_log]
        assert len(keys) == len(set(keys))


def test_unordered_multi_source():
    sim = Simulator(seed=4)
    net = UnorderedRingNet.build(sim, SPEC)
    srcs = [net.add_source(rate_per_sec=10) for _ in range(3)]
    for s in srcs:
        s.start()
    sim.run(until=3_000)
    for s in srcs:
        s.stop()
    sim.run(until=6_000)
    total = sum(s.sent for s in srcs)
    for m in net.member_hosts():
        assert m.delivered_count == total


def test_unordered_handoff_reattaches():
    sim = Simulator(seed=3)
    net = UnorderedRingNet.build(sim, SPEC)
    src = net.add_source(rate_per_sec=20)
    src.start()
    sim.schedule_at(1_000, lambda: net.handoff("mh:0.0.0.0", "ap:1.1.1"))
    sim.run(until=3_000)
    mover = net.mobile_hosts["mh:0.0.0.0"]
    assert mover.handoffs == 1
    before = mover.delivered_count
    sim.run(until=5_000)
    assert mover.delivered_count > before  # keeps receiving at the new AP


def test_unordered_is_faster_than_ordered():
    """Remark 3 in miniature: same hierarchy, lower latency unordered."""
    from repro.core.protocol import RingNet
    sim_o = Simulator(seed=5)
    ordered = RingNet.build(sim_o, SPEC)
    lat_o = LatencyCollector(sim_o.trace, warmup=1_000)
    s = ordered.add_source(rate_per_sec=20)
    ordered.start()
    s.start()
    sim_o.run(until=5_000)

    sim_u = Simulator(seed=5)
    unordered = UnorderedRingNet.build(sim_u, SPEC)
    lat_u = LatencyCollector(sim_u.trace, warmup=1_000)
    s2 = unordered.add_source(rate_per_sec=20)
    s2.start()
    sim_u.run(until=5_000)

    assert lat_u.summary()["mean"] < lat_o.summary()["mean"]


# ---------------------------------------------------------------------------
# Single big ring [16]
# ---------------------------------------------------------------------------
def test_single_ring_total_order():
    from repro.metrics.order_checker import OrderChecker
    sim = Simulator(seed=6)
    ring = SingleRingMulticast.build_ring(sim, n_bs=6, mhs_per_bs=1)
    checker = OrderChecker(sim.trace)
    src = ring.add_source(corresponding="bs:0", rate_per_sec=20)
    ring.start()
    src.start()
    sim.run(until=5_000)
    checker.assert_ok()
    assert checker.deliveries_checked > 0


def test_single_ring_latency_grows_with_size():
    means = []
    for n in (4, 16):
        sim = Simulator(seed=7)
        ring = SingleRingMulticast.build_ring(sim, n_bs=n, mhs_per_bs=1)
        lat = LatencyCollector(sim.trace, warmup=1_000)
        src = ring.add_source(corresponding="bs:0", rate_per_sec=10)
        ring.start()
        src.start()
        sim.run(until=6_000)
        means.append(lat.summary()["mean"])
    assert means[1] > means[0] * 1.5  # strongly super-linear gap


def test_single_ring_minimum_size():
    with pytest.raises(ValueError):
        SingleRingMulticast.build_ring(Simulator(), n_bs=0)


def test_single_ring_peak_buffers_reported():
    sim = Simulator(seed=6)
    ring = SingleRingMulticast.build_ring(sim, n_bs=4, mhs_per_bs=1)
    src = ring.add_source(corresponding="bs:0", rate_per_sec=20)
    ring.start()
    src.start()
    sim.run(until=3_000)
    peaks = ring.ring_peak_buffers()
    assert peaks["wq_peak"] >= 0 and peaks["mq_peak"] > 0


# ---------------------------------------------------------------------------
# Host-View [1]
# ---------------------------------------------------------------------------
def test_hostview_delivers_to_view_members():
    sim = Simulator(seed=8)
    hv = HostViewProtocol(sim, n_mss=4, rate_per_sec=20)
    for i in range(4):
        hv.add_mobile_host(f"mh:{i}", f"mss:{i}")
    hv.sender.start()
    sim.run(until=4_000)
    for m in hv.member_hosts():
        assert m.delivered_count > 0


def test_hostview_global_update_cost():
    sim = Simulator(seed=8)
    hv = HostViewProtocol(sim, n_mss=8, rate_per_sec=5, update_latency=50.0)
    for i in range(8):
        hv.add_mobile_host(f"mh:{i}", f"mss:{i}")
    hv.sender.start()
    sim.run(until=2_000)
    # Every join triggered a global update: control cost grows ~ O(view²).
    assert hv.sender.control_messages >= 8
    assert len(hv.sender.view) == 8


def test_hostview_handoff_to_unviewed_mss_interrupts():
    sim = Simulator(seed=8)
    hv = HostViewProtocol(sim, n_mss=3, rate_per_sec=20, update_latency=200.0)
    hv.add_mobile_host("mh:0", "mss:0")
    hv.sender.start()
    sim.run(until=2_000)
    n_before = hv.mobile_hosts["mh:0"].delivered_count
    hv.handoff("mh:0", "mss:2")  # mss:2 not in the view yet
    sim.run(until=2_150)  # shorter than update latency
    n_during = hv.mobile_hosts["mh:0"].delivered_count
    assert n_during <= n_before + 1  # break in service
    sim.run(until=4_000)
    assert hv.mobile_hosts["mh:0"].delivered_count > n_during  # resumed


# ---------------------------------------------------------------------------
# RelM [6]
# ---------------------------------------------------------------------------
def test_relm_delivers_to_all_regions():
    sim = Simulator(seed=9)
    relm = RelMProtocol(sim, n_regions=2, msss_per_region=2, rate_per_sec=20)
    for i in range(4):
        relm.add_mobile_host(f"mh:{i}", f"mss:{i // 2}.{i % 2}")
    relm.source.start()
    sim.run(until=4_000)
    for m in relm.member_hosts():
        assert m.delivered_count > 0


def test_relm_buffers_concentrated_at_sh():
    sim = Simulator(seed=9)
    relm = RelMProtocol(sim, n_regions=2, msss_per_region=3, rate_per_sec=30,
                        catchup_window=16)
    for i in range(6):
        relm.add_mobile_host(f"mh:{i}", f"mss:{i // 3}.{i % 3}")
    relm.source.start()
    sim.run(until=4_000)
    peaks = relm.peak_buffers()
    assert peaks["sh_peak_max"] > peaks["mss_peak_max"]


def test_relm_intra_region_handoff_catches_up():
    sim = Simulator(seed=9)
    relm = RelMProtocol(sim, n_regions=1, msss_per_region=3, rate_per_sec=20)
    relm.add_mobile_host("mh:0", "mss:0.0")
    relm.source.start()
    sim.run(until=2_000)
    relm.handoff("mh:0", "mss:0.2")
    sim.run(until=4_000)
    mh = relm.mobile_hosts["mh:0"]
    assert mh.handoffs == 1
    assert mh.delivered_count > 0


def test_relm_validation():
    with pytest.raises(ValueError):
        RelMProtocol(Simulator(), n_regions=0, msss_per_region=1)


# ---------------------------------------------------------------------------
# Central sequencer
# ---------------------------------------------------------------------------
def test_sequencer_assigns_contiguous_gseqs():
    sim = Simulator(seed=10)
    sq = SequencerMulticast(sim, n_aps=3)
    for i in range(3):
        sq.add_mobile_host(f"mh:{i}", f"ap:{i}")
    srcs = [sq.add_source(rate_per_sec=20) for _ in range(2)]
    for s in srcs:
        s.start()
    sim.run(until=3_000)
    for s in srcs:
        s.stop()
    sim.run(until=5_000)
    total = sum(s.sent for s in srcs)
    assert sq.sequencer.sequenced == total
    mh = sq.mobile_hosts["mh:0"]
    seqs = sorted(g for g, _, _ in mh.app_log)
    assert seqs == list(range(total))


def test_sequencer_all_members_agree():
    sim = Simulator(seed=10)
    sq = SequencerMulticast(sim, n_aps=3)
    for i in range(3):
        sq.add_mobile_host(f"mh:{i}", f"ap:{i}")
    src = sq.add_source(rate_per_sec=25)
    src.start()
    sim.run(until=3_000)
    src.stop()
    sim.run(until=5_000)
    ref = None
    for m in sq.member_hosts():
        this = {g: p for g, p, _ in m.app_log}
        if ref is None:
            ref = this
        else:
            assert this == ref
