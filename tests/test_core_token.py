"""Unit tests for the OrderingToken / WTSNP (paper §4.1)."""

import pytest

from repro.core.token import OrderingToken, WTSNPEntry


def test_assign_allocates_contiguous_globals():
    t = OrderingToken(gid="g")
    e = t.assign("src:0", "br:0", 0, 4)
    assert (e.min_global, e.max_global) == (0, 4)
    assert t.next_global_seq == 5
    e2 = t.assign("src:1", "br:1", 0, 2)
    assert (e2.min_global, e2.max_global) == (5, 7)
    assert t.next_global_seq == 8


def test_assign_empty_run_rejected():
    t = OrderingToken(gid="g")
    with pytest.raises(ValueError):
        t.assign("s", "n", 5, 4)


def test_assign_single_message_run():
    t = OrderingToken(gid="g")
    e = t.assign("s", "n", 7, 7)
    assert e.count == 1
    assert e.global_for(7) == 0


def test_entry_covers_and_maps():
    e = WTSNPEntry("src:0", 10, 19, "br:0", 100, 109)
    assert e.covers("br:0", 10) and e.covers("br:0", 19)
    assert not e.covers("br:0", 9)
    assert not e.covers("br:0", 20)
    assert not e.covers("br:1", 15)
    assert e.global_for(13) == 103


def test_lookup_finds_covering_entry():
    t = OrderingToken(gid="g")
    t.assign("s0", "br:0", 0, 9)
    t.assign("s1", "br:1", 0, 9)
    e = t.lookup("br:1", 5)
    assert e is not None and e.global_for(5) == 15
    assert t.lookup("br:2", 0) is None


def test_age_decrements_and_prunes():
    t = OrderingToken(gid="g")
    t.assign("s", "n", 0, 0, ttl_hops=2)
    t.age()
    assert len(t) == 1
    t.age()
    assert len(t) == 0
    assert t.hops == 2


def test_age_keeps_fresh_entries():
    t = OrderingToken(gid="g")
    t.assign("s", "n", 0, 0, ttl_hops=1)
    t.assign("s", "n", 1, 1, ttl_hops=10)
    t.age()
    assert len(t) == 1
    assert t.wtsnp[0].min_local == 1


def test_snapshot_is_deep_copy():
    t = OrderingToken(gid="g")
    t.assign("s", "n", 0, 5)
    snap = t.snapshot()
    t.assign("s", "n", 6, 9)
    assert len(snap) == 1 and len(t) == 2
    snap.wtsnp[0].min_local = 99
    assert t.wtsnp[0].min_local == 0


def test_entries_by_node_groups():
    t = OrderingToken(gid="g")
    t.assign("s0", "br:0", 0, 1)
    t.assign("s1", "br:1", 0, 1)
    t.assign("s0", "br:0", 2, 3)
    by = t.entries_by_node
    assert len(by["br:0"]) == 2 and len(by["br:1"]) == 1


def test_global_seq_never_reused_within_token():
    t = OrderingToken(gid="g")
    seen = set()
    for i in range(20):
        e = t.assign("s", "n", i * 3, i * 3 + 2)
        for g in range(e.min_global, e.max_global + 1):
            assert g not in seen
            seen.add(g)
    assert seen == set(range(60))


# ---------------------------------------------------------------------------
# snapshot() — field-wise copy must behave exactly like the old deepcopy
# ---------------------------------------------------------------------------
def _populated_token() -> OrderingToken:
    t = OrderingToken(gid="g", token_id=(3, "br:1"))
    t.assign("src:0", "br:0", 0, 9, ttl_hops=8)
    t.assign("src:1", "br:1", 0, 4, ttl_hops=5)
    t.assign("src:0", "br:0", 10, 12, ttl_hops=8)
    t.hops = 7
    return t


def test_snapshot_equals_deepcopy():
    import copy

    t = _populated_token()
    assert t.snapshot() == copy.deepcopy(t)
    assert t.snapshot() == t  # dataclass equality: identical field values


def test_snapshot_is_independent_of_original():
    t = _populated_token()
    snap = t.snapshot()
    # Mutating the original (the ongoing rotation) must not leak into
    # the retained snapshot...
    t.assign("src:2", "br:2", 0, 1)
    t.age()
    assert len(snap) == 3
    assert snap.next_global_seq == 18
    assert snap.wtsnp[0].ttl_hops == 8
    # ...and aging the snapshot must not touch the live token.
    before = [e.ttl_hops for e in t.wtsnp]
    snap.age()
    assert [e.ttl_hops for e in t.wtsnp] == before


def test_snapshot_of_snapshot_round_trips():
    t = _populated_token()
    assert t.snapshot().snapshot() == t
