"""Scale-rung memory regression: idle catchment MHs must cost ~nothing.

The xxl/metro rungs only fit in this container because a registered-but-
never-materialized catchment member is a *count*, not an object (see
``RingNet.register_catchment``).  These tests pin that invariant with
``tracemalloc`` at the real xxl shape, and prove the streaming trace
sink is a lossless stand-in for in-memory recording (record -> stream ->
replay round trip).
"""

import gc
import tracemalloc

import pytest

from repro.bench.ladder import get_rung, node_counts, rung_spec
from repro.experiments import registry
from repro.experiments.runner import build_scenario
from repro.validation.record import (line_to_record, read_trace_lines,
                                     record_spec, record_to_line)

#: Allowed resident bytes per *idle* (never-materialized) catchment MH.
#: The true cost is a share of one ``{ap_id: count}`` dict entry per AP
#: (well under one byte per member at xxl's 195/AP); 64 bytes leaves
#: room for allocator noise while still catching any accidental
#: per-member object.
IDLE_MH_BYTE_BOUND = 64


def _traced_build_bytes(spec):
    """Traced heap bytes retained after building ``spec``'s scenario."""
    gc.collect()
    tracemalloc.start()
    try:
        scenario = build_scenario(spec)
        gc.collect()
        size, _peak = tracemalloc.get_traced_memory()
        # Keep the scenario alive through the measurement, then drop it.
        del scenario
    finally:
        tracemalloc.stop()
    gc.collect()
    return size


# ---------------------------------------------------------------------------
# Idle-MH memory at the xxl shape
# ---------------------------------------------------------------------------
def test_xxl_idle_mhs_are_counts_not_objects():
    spec = rung_spec(get_rung("xxl"))
    scenario = build_scenario(spec)
    net = scenario.net
    counts = node_counts(spec)
    # ~100k declared MHs, but only mhs_per_ap of them exist as objects.
    assert counts["mhs"] > 100_000
    assert net.catchment_total == counts["mhs"] - len(net.mobile_hosts)
    assert net.catchment_materialized == 0  # nothing ran yet
    assert net.catchment_idle == net.catchment_total


def test_xxl_per_idle_mh_bytes_stay_bounded():
    """Registering the full xxl catchment (~100k idle MHs) must cost
    O(APs), not O(MHs): the per-idle-MH byte delta vs a zero-idle build
    stays under a fixed small bound."""
    xxl = rung_spec(get_rung("xxl"))
    dense = xxl.with_overrides({"hierarchy.idle_per_ap": 0,
                                "openworld.enabled": False})
    idle_count = node_counts(xxl)["mhs"] - node_counts(dense)["mhs"]
    assert idle_count >= 90_000

    size_dense = _traced_build_bytes(dense)
    size_idle = _traced_build_bytes(xxl)
    per_idle = max(0, size_idle - size_dense) / idle_count
    assert per_idle < IDLE_MH_BYTE_BOUND, (
        f"{per_idle:.1f} B per idle MH (bound {IDLE_MH_BYTE_BOUND} B); "
        "did someone materialize catchment members eagerly?")


# ---------------------------------------------------------------------------
# Streaming sink round trip
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def roundtrip_spec():
    return registry.get("quickstart", **{"duration_ms": 600.0,
                                         "warmup_ms": 0.0, "seed": 11})


def test_stream_round_trip_equals_in_memory(tmp_path, roundtrip_spec):
    """record -> stream -> replay: the windowed JSONL.gz sink must be a
    byte-level stand-in for the in-memory recorder."""
    in_memory = record_spec(roundtrip_spec).lines
    assert in_memory, "spec produced no trace records"

    path = str(tmp_path / "trace.jsonl.gz")
    sink = record_spec(roundtrip_spec, stream_path=path)
    assert sink.count == len(in_memory)

    streamed = read_trace_lines(path)
    assert streamed == in_memory

    # Replay: parse every streamed line back into a TraceRecord and
    # re-serialize; canonical form must survive the round trip.
    replayed = [record_to_line(line_to_record(line)) for line in streamed]
    assert replayed == in_memory


def test_stream_uses_small_windows(tmp_path, roundtrip_spec):
    """A tiny window (frequent gzip flushes) must not change content."""
    big = str(tmp_path / "big.jsonl.gz")
    small = str(tmp_path / "small.jsonl.gz")
    record_spec(roundtrip_spec, stream_path=big)
    record_spec(roundtrip_spec, stream_path=small, window=7)
    assert read_trace_lines(small) == read_trace_lines(big)
