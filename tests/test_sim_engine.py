"""Unit tests for the event-heap scheduler."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_starts_at_time_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_single_event(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_deterministic_order(sim):
    """Same-time events fire in causal-key order: an arbitrary but fully
    deterministic permutation, identical run after run (and — the
    property the sharded backend builds on — independent of how the
    event population is partitioned)."""
    def observed():
        s = Simulator(seed=9)
        order = []
        for tag in ("first", "second", "third"):
            s.schedule(1.0, order.append, tag)
        s.run()
        return order

    first = observed()
    assert sorted(first) == ["first", "second", "third"]
    assert observed() == first
    assert observed() == first


def test_schedule_with_args(sim):
    got = []
    sim.schedule(1.0, lambda a, b: got.append(a + b), 2, 3)
    sim.run()
    assert got == [5]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancel_prevents_firing(sim):
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(ev)
    sim.run()
    assert fired == []


def test_cancel_after_fire_is_noop(sim):
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    sim.cancel(ev)  # must not raise
    assert fired == [1]


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0  # clock advanced to the horizon


def test_run_until_is_inclusive(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == [1]


def test_run_resumes_after_until(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    sim.run()
    assert fired == [10]


def test_events_scheduled_during_run_execute(sim):
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 2.0


def test_max_events_bounds_processing(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_loop(sim):
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [(1, None)] or fired[0] is not None  # stop after current
    assert len(fired) == 1


def test_step_processes_one_event(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_peek_returns_next_time(sim):
    assert sim.peek() is None
    sim.schedule(4.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.peek() == 2.0


def test_peek_skips_cancelled(sim):
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(ev)
    assert sim.peek() == 2.0


def test_pending_counts_noncancelled(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    sim.cancel(e1)
    assert sim.pending == 1


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reentrant_run_rejected(sim):
    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_rng_streams_are_deterministic():
    a = Simulator(seed=99)
    b = Simulator(seed=99)
    assert a.rng("x").random() == b.rng("x").random()


def test_rng_streams_differ_by_name(sim):
    assert sim.rng("a").random() != sim.rng("b").random()


def test_zero_delay_event_fires_at_current_time(sim):
    sim.schedule(5.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    times = []
    sim.run()
    assert times == [5.0]


# ---------------------------------------------------------------------------
# Lazy-cancel compaction
# ---------------------------------------------------------------------------
def test_cancelled_timer_flood_keeps_heap_bounded(sim):
    """Regression: 100k scheduled+cancelled far-future timers must not
    accumulate in the heap until their deadlines (the retransmission-
    timer-cancelled-on-ack pattern)."""
    from repro.sim.engine import COMPACT_MIN_SIZE

    for i in range(100_000):
        ev = sim.schedule(1e9 + i, lambda: None)
        sim.cancel(ev)
        assert len(sim._heap) <= COMPACT_MIN_SIZE
    assert sim.pending == 0
    assert sim.compactions > 0


def test_compaction_bounds_heap_with_live_events(sim):
    """Interleaved live + cancelled events: heap stays O(live)."""
    live = []
    for i in range(10_000):
        live.append(sim.schedule(1e6 + i, lambda: None))
        sim.cancel(sim.schedule(2e6 + i, lambda: None))
    # At most half the heap is dead at any point after a compaction
    # opportunity, so the heap never exceeds ~2x the live population.
    assert len(sim._heap) <= 2 * len(live) + 1
    assert sim.pending == len(live)


def test_compaction_preserves_event_order():
    """Popping from a compacted heap must yield the exact pre-compaction
    event order (the trace-identity guarantee, in miniature)."""
    import random

    rng = random.Random(7)
    sim = Simulator(seed=0)
    expected = []
    for i in range(5_000):
        t = rng.uniform(0.0, 100.0)
        ev = sim.schedule(t, expected.append, None)  # placeholder arg
        if rng.random() < 0.7:
            sim.cancel(ev)
        else:
            ev.args = (ev,)  # fire with identity so we can track order
            expected.append(ev)
    expected_order = sorted(expected, key=lambda e: (e.time, e.key))
    fired = []
    for ev in expected:
        ev.fn = fired.append
    sim.run()
    assert fired == expected_order


def test_pending_is_exact_after_mixed_cancels(sim):
    events = [sim.schedule(float(i % 17) + 1.0, lambda: None)
              for i in range(500)]
    for ev in events[::3]:
        sim.cancel(ev)
        sim.cancel(ev)  # double-cancel must not double-count
    brute = sum(1 for ev in events if not ev.cancelled)
    assert sim.pending == brute


def test_cancel_after_fire_is_harmless(sim):
    ev = sim.schedule(1.0, lambda: None)
    live = sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    sim.cancel(ev)  # already fired
    assert sim.pending == 1
    sim.run()
    assert sim.events_processed == 2
    assert live.cancelled is False


def test_peak_heap_counter(sim):
    for i in range(10):
        sim.schedule(float(i) + 1.0, lambda: None)
    assert sim.peak_heap == 10
    sim.run()
    assert sim.peak_heap == 10  # fires don't raise the peak
