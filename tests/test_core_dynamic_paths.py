"""Tests for dynamic-path mode (§3 path building) and cold-AP handling."""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.datastructures import MessageQueue, BufferedMessage
from repro.metrics.order_checker import OrderChecker
from repro.topology.tiers import Tier

from helpers import small_net


def dyn_cfg(**kw) -> ProtocolConfig:
    return ProtocolConfig(static_ap_paths=False, **kw)


# ---------------------------------------------------------------------------
# MessageQueue.anchor
# ---------------------------------------------------------------------------
def test_anchor_rebases_empty_queue():
    mq = MessageQueue()
    mq.anchor(100)
    assert mq.front == 99 and mq.valid_front == 100 and mq.rear == 99
    assert mq.insert(BufferedMessage(global_seq=100, source="s", local_seq=0,
                                     ordering_node="n"))
    assert not mq.insert(BufferedMessage(global_seq=50, source="s",
                                         local_seq=0, ordering_node="n"))


def test_anchor_rejects_nonempty_queue():
    mq = MessageQueue()
    mq.insert(BufferedMessage(global_seq=0, source="s", local_seq=0,
                              ordering_node="n"))
    with pytest.raises(ValueError):
        mq.anchor(10)


# ---------------------------------------------------------------------------
# Dynamic-path mode behaviour
# ---------------------------------------------------------------------------
def test_aps_start_cold_in_dynamic_mode():
    sim, net = small_net(mhs_per_ap=0, cfg=dyn_cfg())
    src = net.add_source(rate_per_sec=30)
    net.start()
    src.start()
    sim.run(until=2_000)
    aps = [net.nes[a] for a in net.hierarchy.nodes_of_tier(Tier.AP)]
    # No members anywhere: no AP receives the stream.
    assert all(not ap.path_established for ap in aps)
    assert all(ap.mq.occupancy == 0 for ap in aps)


def test_member_pulls_ap_into_delivery_tree():
    sim, net = small_net(mhs_per_ap=0, cfg=dyn_cfg())
    src = net.add_source(rate_per_sec=30)
    net.start()
    src.start()
    sim.run(until=1_000)
    mh = net.add_mobile_host("mh:x", "ap:0.0.0")
    sim.run(until=3_000)
    ap = net.nes["ap:0.0.0"]
    assert ap.path_established
    assert mh.is_member
    assert mh.delivered_count > 0


def test_deferred_join_base_matches_first_stream_message():
    sim, net = small_net(mhs_per_ap=0, cfg=dyn_cfg())
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=2_000)  # ~40 messages flowed before the member exists
    mh = net.add_mobile_host("mh:late", "ap:1.0.0")
    sim.run(until=5_000)
    seqs = mh.delivered_seqs()
    assert seqs, "deferred join never completed"
    assert seqs[0] > 10  # started near the live stream, not from 0
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))


def test_cold_ap_anchors_instead_of_gap_chasing():
    sim, net = small_net(mhs_per_ap=0, cfg=dyn_cfg())
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=2_000)
    net.add_mobile_host("mh:x", "ap:0.0.0")
    sim.run(until=4_000)
    ap = net.nes["ap:0.0.0"]
    # The AP never requested ancient history: its queue starts at the
    # anchored sequence, and no gap requests were issued for 0..anchor.
    assert ap.mq.valid_front > 10
    assert ap.gaps_requested == 0


def test_order_holds_under_dynamic_mode_with_mobility():
    from repro.mobility.cells import CellGrid
    from repro.mobility.handoff import HandoffDriver
    from repro.mobility.models import RandomWalk
    sim, net = small_net(mhs_per_ap=0, cfg=dyn_cfg(), seed=19,
                         aps_per_ag=3)
    checker = OrderChecker(sim.trace)
    src = net.add_source(rate_per_sec=25)
    net.start()
    src.start()
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    for i in range(4):
        net.add_mobile_host(f"mh:{i}", aps[i % len(aps)])
    grid = CellGrid.square_for(aps)
    driver = HandoffDriver(net, grid, RandomWalk(mean_dwell_ms=600.0))
    for i in range(4):
        driver.track(f"mh:{i}", aps[i % len(aps)])
    sim.run(until=8_000)
    checker.assert_ok()
    assert driver.handoffs_driven > 5


def test_last_member_leaving_demotes_path_to_standby():
    cfg = dyn_cfg(reservation_ttl=400.0, smooth_handoff=False)
    sim, net = small_net(mhs_per_ap=0, cfg=cfg)
    src = net.add_source(rate_per_sec=20)
    net.start()
    src.start()
    mh = net.add_mobile_host("mh:x", "ap:0.0.0")
    sim.run(until=1_000)
    ag = net.nes["ag:0.0"]
    assert ag.has_child("ap:0.0.0")
    mh.leave()
    sim.run(until=3_000)  # standby reservation expires
    assert not ag.has_child("ap:0.0.0")
